"""Crash/restart recovery: redo of committed work, undo of losers."""

import pytest

from repro.errors import CrashedError, LogFullError
from repro.kernel import Simulator
from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    db = Database(sim, "r", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(setup())
    return db


def insert(db, session, k, v):
    yield from session.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))


def all_rows(db):
    def go():
        session = db.session()
        result = yield from session.execute("SELECT k, v FROM t ORDER BY k")
        yield from session.commit()
        return result.rows
    return db.sim.run_process(go())


def test_committed_data_survives_crash_without_checkpoint():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        yield from insert(db, session, 1, "one")
        yield from insert(db, session, 2, "two")
        yield from session.commit()

    sim.run_process(work())
    db.crash()
    summary = db.restart()
    assert summary["redone"] >= 2
    assert all_rows(db) == [(1, "one"), (2, "two")]


def test_uncommitted_transaction_rolled_back_at_restart():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        yield from insert(db, session, 1, "committed")
        yield from session.commit()
        yield from insert(db, session, 2, "in-flight")
        # force the log tail so the loser's records are durable, then crash
        db.wal.force()

    sim.run_process(work())
    db.crash()
    summary = db.restart()
    assert summary["losers"]
    assert all_rows(db) == [(1, "committed")]


def test_unforced_loser_records_simply_vanish():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        yield from insert(db, session, 1, "committed")
        yield from session.commit()
        yield from insert(db, session, 2, "never-forced")

    sim.run_process(work())
    db.crash()
    db.restart()
    assert all_rows(db) == [(1, "committed")]


def test_update_and_delete_recovered():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        for k in range(5):
            yield from insert(db, session, k, f"v{k}")
        yield from session.commit()
        yield from session.execute("UPDATE t SET v = 'changed' WHERE k = 2")
        yield from session.execute("DELETE FROM t WHERE k = 4")
        yield from session.commit()

    sim.run_process(work())
    db.crash()
    db.restart()
    assert all_rows(db) == [(0, "v0"), (1, "v1"), (2, "changed"), (3, "v3")]


def test_recovery_is_idempotent_across_double_crash():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        yield from insert(db, session, 1, "one")
        yield from session.commit()
        yield from insert(db, session, 2, "loser")
        db.wal.force()

    sim.run_process(work())
    db.crash()
    db.restart()
    db.crash()  # crash again right after recovery
    db.restart()
    assert all_rows(db) == [(1, "one")]


def test_indexes_rebuilt_after_restart():
    sim = Simulator()
    db = make_db(sim)

    def work():
        session = db.session()
        for k in range(10):
            yield from insert(db, session, k, f"v{k}")
        yield from session.commit()

    sim.run_process(work())
    db.crash()
    db.restart()
    db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})
    assert db.explain("SELECT v FROM t WHERE k = ?")["access"] == "index_scan"

    def probe():
        session = db.session()
        row = yield from session.query_one("SELECT v FROM t WHERE k = ?", (7,))
        yield from session.commit()
        return row

    assert sim.run_process(probe()) == ("v7",)


def test_checkpoint_bounds_redo_work():
    sim = Simulator()
    db = make_db(sim)

    def phase(vals):
        session = db.session()
        for k in vals:
            yield from insert(db, session, k, "x")
        yield from session.commit()

    sim.run_process(phase(range(50)))
    db.checkpoint()
    sim.run_process(phase(range(50, 60)))
    db.crash()
    summary = db.restart()
    # Only the 10 post-checkpoint inserts should need redo.
    assert summary["redone"] <= 12
    assert len(all_rows(db)) == 60


def test_operations_on_crashed_db_fail_fast():
    sim = Simulator()
    db = make_db(sim)
    db.crash()
    with pytest.raises(CrashedError):
        db.begin()


def test_log_full_from_one_giant_transaction():
    sim = Simulator()
    db = make_db(sim, wal_capacity=100)

    def work():
        session = db.session()
        with pytest.raises(LogFullError):
            for k in range(200):
                yield from insert(db, session, k, "x")
        return "aborted"

    assert sim.run_process(work()) == "aborted"
    assert db.wal.metrics.log_fulls == 1


def test_periodic_commits_avoid_log_full():
    """The paper's mitigation (E8): commit every N records."""
    sim = Simulator()
    db = make_db(sim, wal_capacity=100)

    def work():
        session = db.session()
        for k in range(200):
            yield from insert(db, session, k, "x")
            if (k + 1) % 20 == 0:
                yield from session.commit()
                db.checkpoint()
        yield from session.commit()

    sim.run_process(work())
    assert len(all_rows(db)) == 200
    assert db.wal.metrics.log_fulls == 0


def test_log_full_transaction_can_still_roll_back():
    sim = Simulator()
    db = make_db(sim, wal_capacity=100)

    def work():
        session = db.session()
        try:
            for k in range(200):
                yield from insert(db, session, k, "x")
        except LogFullError:
            pass
        # engine auto-rolled-back; a fresh transaction works
        yield from insert(db, session, 999, "after")
        yield from session.commit()

    sim.run_process(work())
    assert all_rows(db) == [(999, "after")]


def test_active_floor_pins_log_across_other_commits():
    """A long-running transaction pins the active window even while other
    transactions commit (why DLFM marks utility txns in-flight, E8)."""
    sim = Simulator()
    # next-key locking off: the pinner's key locks are irrelevant here
    db = make_db(sim, wal_capacity=120, next_key_locking=False)

    def work():
        pinner = db.session()
        yield from insert(db, pinner, 100_000, "pin")  # stays open
        other = db.session()
        raised = False
        try:
            for k in range(200):
                yield from other.execute(
                    "INSERT INTO t (k, v) VALUES (?, ?)", (k, "x"))
                if (k + 1) % 10 == 0:
                    yield from other.commit()
                    db.checkpoint()
        except LogFullError:
            raised = True
        return raised

    assert sim.run_process(work()) is True

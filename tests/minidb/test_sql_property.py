"""Property-based SQL executor testing against a Python reference model."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Simulator
from repro.minidb import Database, DBConfig

ROWS = st.lists(
    st.tuples(st.integers(0, 50),                       # a
              st.integers(-10, 10),                     # b
              st.sampled_from(["x", "y", "z", None])),  # c
    min_size=0, max_size=40)

_OPS = {"=": operator.eq, "<": operator.lt, ">": operator.gt,
        "<=": operator.le, ">=": operator.ge, "<>": operator.ne}

predicate = st.one_of(
    st.tuples(st.just("a"), st.sampled_from(list(_OPS)),
              st.integers(0, 50)),
    st.tuples(st.just("b"), st.sampled_from(list(_OPS)),
              st.integers(-10, 10)),
    st.tuples(st.just("c"), st.just("="), st.sampled_from(["x", "y"])),
)


def build_db(rows, indexed: bool):
    sim = Simulator(seed=5)
    db = Database(sim, "ref", DBConfig(next_key_locking=False))

    def setup():
        session = db.session()
        yield from session.execute(
            "CREATE TABLE t (rowid INT, a INT, b INT, c TEXT)")
        if indexed:
            yield from session.execute("CREATE INDEX t_a ON t (a)")
            yield from session.execute("CREATE INDEX t_ab ON t (a, b)")
        for i, (a, b, c) in enumerate(rows):
            yield from session.execute(
                "INSERT INTO t (rowid, a, b, c) VALUES (?, ?, ?, ?)",
                (i, a, b, c))
        yield from session.commit()

    sim.run_process(setup())
    return sim, db


def reference_filter(rows, preds, combine_and=True):
    def match_one(row, pred):
        col, op, value = pred
        actual = {"a": row[0], "b": row[1], "c": row[2]}[col]
        if actual is None:
            return None
        return _OPS[op](actual, value)

    out = []
    for i, row in enumerate(rows):
        values = [match_one(row, p) for p in preds]
        if combine_and:
            ok = all(v is True for v in values)
        else:
            ok = any(v is True for v in values)
        if ok:
            out.append(i)
    return sorted(out)


def run_query(sim, db, preds, combine_and):
    joiner = " AND " if combine_and else " OR "
    where = joiner.join(f"{c} {op} ?" for c, op, _ in preds)
    params = tuple(v for _, _, v in preds)
    sql = f"SELECT rowid FROM t WHERE {where}" if preds else \
        "SELECT rowid FROM t"

    def go():
        session = db.session()
        result = yield from session.execute(sql, params)
        yield from session.commit()
        return sorted(r[0] for r in result)

    return sim.run_process(go())


@settings(max_examples=50, deadline=None)
@given(ROWS, st.lists(predicate, min_size=1, max_size=3), st.booleans(),
       st.booleans())
def test_select_matches_reference(rows, preds, combine_and, runstats):
    sim, db = build_db(rows, indexed=True)
    if runstats:
        db.runstats("t")  # may flip plans to index scans
    got = run_query(sim, db, preds, combine_and)
    expected = reference_filter(rows, preds, combine_and)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(ROWS, st.lists(predicate, min_size=1, max_size=2))
def test_plan_choice_never_changes_results(rows, preds):
    """Table-scan plans and index-scan plans agree row for row."""
    sim1, db1 = build_db(rows, indexed=False)
    sim2, db2 = build_db(rows, indexed=True)
    db2.set_table_stats("t", card=1_000_000,
                        colcard={"a": 1_000, "b": 1_000})
    got_scan = run_query(sim1, db1, preds, True)
    got_index = run_query(sim2, db2, preds, True)
    assert got_scan == got_index


@settings(max_examples=30, deadline=None)
@given(ROWS, st.integers(0, 50), st.integers(0, 50))
def test_between_matches_reference(rows, lo, hi):
    sim, db = build_db(rows, indexed=True)
    db.runstats("t")

    def go():
        session = db.session()
        result = yield from session.execute(
            "SELECT rowid FROM t WHERE a BETWEEN ? AND ?", (lo, hi))
        yield from session.commit()
        return sorted(r[0] for r in result)

    got = sim.run_process(go())
    expected = sorted(i for i, (a, _, _) in enumerate(rows)
                      if lo <= a <= hi)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(ROWS, st.integers(-10, 10))
def test_update_matches_reference(rows, threshold):
    sim, db = build_db(rows, indexed=True)

    def go():
        session = db.session()
        count = yield from session.execute(
            "UPDATE t SET b = b + 100 WHERE b < ?", (threshold,))
        result = yield from session.execute("SELECT rowid, b FROM t")
        yield from session.commit()
        return count, dict(result.rows)

    count, after = sim.run_process(go())
    expected = {i: (b + 100 if b < threshold else b)
                for i, (_, b, _) in enumerate(rows)}
    assert count == sum(1 for _, b, _ in rows if b < threshold)
    assert after == expected


@settings(max_examples=30, deadline=None)
@given(ROWS, st.sampled_from(["x", "y", "z"]))
def test_delete_matches_reference(rows, victim):
    sim, db = build_db(rows, indexed=True)

    def go():
        session = db.session()
        count = yield from session.execute(
            "DELETE FROM t WHERE c = ?", (victim,))
        result = yield from session.execute("SELECT rowid FROM t")
        yield from session.commit()
        return count, sorted(r[0] for r in result)

    count, remaining = sim.run_process(go())
    expected_remaining = sorted(i for i, (_, _, c) in enumerate(rows)
                                if c != victim)
    assert count == sum(1 for _, _, c in rows if c == victim)
    assert remaining == expected_remaining


@settings(max_examples=25, deadline=None)
@given(ROWS)
def test_aggregates_match_reference(rows):
    sim, db = build_db(rows, indexed=False)

    def go():
        session = db.session()
        result = yield from session.execute(
            "SELECT COUNT(*), MIN(a), MAX(a), SUM(b) FROM t")
        yield from session.commit()
        return result.rows[0]

    count, mn, mx, total = sim.run_process(go())
    assert count == len(rows)
    assert mn == (min((r[0] for r in rows), default=None))
    assert mx == (max((r[0] for r in rows), default=None))
    assert total == (sum(r[1] for r in rows) if rows else None)


@settings(max_examples=25, deadline=None)
@given(ROWS)
def test_order_by_matches_reference(rows):
    sim, db = build_db(rows, indexed=False)

    def go():
        session = db.session()
        result = yield from session.execute(
            "SELECT rowid FROM t ORDER BY a DESC, rowid ASC")
        yield from session.commit()
        return [r[0] for r in result]

    got = sim.run_process(go())
    expected = [i for i, _ in sorted(enumerate(rows),
                                     key=lambda p: (-p[1][0], p[0]))]
    assert got == expected

"""Bound-plan cache: LRU bound + DDL-driven eviction.

The cache is keyed by SQL text. It must stay bounded
(``DBConfig.plan_cache_size``), keep hot statements resident (LRU), and
evict exactly the plans a DDL statement could invalidate or improve —
most importantly, a scan plan cached before CREATE INDEX must re-bind
and pick up the new index on its next execution.
"""

import pytest

from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    db = Database(sim, "plans", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE TABLE u (k INT, v TEXT)")
        for table in ("t", "u"):
            for i in range(50):
                yield from session.execute(
                    f"INSERT INTO {table} (k, v) VALUES (?, ?)",
                    (i, f"v{i}"))
        yield from session.commit()

    sim.run_process(setup())
    return db


def test_cache_size_validation():
    with pytest.raises(ValueError):
        DBConfig(plan_cache_size=0).validate()


def test_lru_cap_evicts_oldest(sim):
    db = make_db(sim, plan_cache_size=4)
    db._plan_cache.clear()               # drop the setup INSERT plans
    sqls = [f"SELECT * FROM t WHERE k = {i}" for i in range(6)]
    for sql in sqls:
        db.get_plan(sql)
    assert len(db._plan_cache) == 4
    assert db.metrics.plan_evictions == 2
    assert sqls[0] not in db._plan_cache
    assert sqls[1] not in db._plan_cache
    assert sqls[5] in db._plan_cache


def test_lru_hit_refreshes_recency(sim):
    db = make_db(sim, plan_cache_size=2)
    db._plan_cache.clear()               # drop the setup INSERT plans
    a, b, c = ("SELECT * FROM t WHERE k = 1", "SELECT * FROM t WHERE k = 2",
               "SELECT * FROM t WHERE k = 3")
    db.get_plan(a)
    db.get_plan(b)
    binds = db.metrics.plan_binds
    db.get_plan(a)                       # hit: no re-bind, A becomes MRU
    assert db.metrics.plan_binds == binds
    db.get_plan(c)                       # evicts B, not A
    assert a in db._plan_cache
    assert b not in db._plan_cache
    assert c in db._plan_cache


def test_ddl_evicts_only_plans_touching_the_table(sim):
    db = make_db(sim)
    t_sql = "SELECT * FROM t WHERE k = 5"
    u_sql = "SELECT * FROM u WHERE k = 5"
    db.get_plan(t_sql)
    db.get_plan(u_sql)
    db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    def ddl():
        session = db.session()
        yield from session.execute("CREATE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(ddl())
    assert t_sql not in db._plan_cache    # could now use the index
    assert u_sql in db._plan_cache        # untouched table keeps its plan
    assert db.metrics.plan_evictions >= 1


def test_reexecute_after_create_index_picks_new_index(sim):
    """The regression this cache eviction exists for: a statement bound
    to a table scan before CREATE INDEX must come back as an index scan
    on its next execution, not keep its stale plan."""
    db = make_db(sim)
    sql = "SELECT * FROM t WHERE k = ?"
    db.set_table_stats("t", card=1_000_000, npages=40_000,
                       colcard={"k": 1_000_000})
    before = db.explain(sql)
    assert before["access"] == "table_scan"

    def ddl():
        session = db.session()
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(ddl())
    after = db.explain(sql)
    assert after["access"] == "index_scan"
    assert after["index"] == "t_k"

    def query():
        session = db.session()
        result = yield from session.execute(sql, (7,))
        yield from session.commit()
        return result.rows

    assert sim.run_process(query()) == [(7, "v7")]


def test_drop_index_rebinds_back_to_scan(sim):
    db = make_db(sim)
    sql = "SELECT * FROM t WHERE k = ?"
    db.set_table_stats("t", card=1_000_000, npages=40_000,
                       colcard={"k": 1_000_000})

    def ddl(text):
        def go():
            session = db.session()
            yield from session.execute(text)
            yield from session.commit()
        sim.run_process(go())

    ddl("CREATE UNIQUE INDEX t_k ON t (k)")
    assert db.explain(sql)["access"] == "index_scan"
    ddl("DROP INDEX t_k")
    assert db.explain(sql)["access"] == "table_scan"


def test_crash_clears_the_cache(sim):
    db = make_db(sim)
    sql = "SELECT * FROM t WHERE k = 1"
    db.get_plan(sql)
    db.crash()
    db.restart()
    assert sql not in db._plan_cache

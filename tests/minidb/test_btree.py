"""Unit and property-based tests for the B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError
from repro.minidb.btree import BTree, INFINITY_KEY, encode_key, encode_value


def make(unique=False, order=8):
    return BTree("idx", "t", ("k",), unique, order=order)


def test_insert_and_search_eq():
    tree = make()
    tree.insert(("a",), (0, 0))
    tree.insert(("b",), (0, 1))
    assert tree.search_eq(("a",)) == [(0, 0)]
    assert tree.search_eq(("b",)) == [(0, 1)]
    assert tree.search_eq(("c",)) == []


def test_duplicate_rids_allowed_on_non_unique():
    tree = make()
    tree.insert(("a",), (0, 0))
    tree.insert(("a",), (0, 1))
    assert sorted(tree.search_eq(("a",))) == [(0, 0), (0, 1)]


def test_unique_index_rejects_duplicate_key():
    tree = make(unique=True)
    tree.insert(("a",), (0, 0))
    with pytest.raises(DuplicateKeyError):
        tree.insert(("a",), (0, 1))
    assert len(tree) == 1


def test_delete_specific_entry():
    tree = make()
    tree.insert(("a",), (0, 0))
    tree.insert(("a",), (0, 1))
    assert tree.delete(("a",), (0, 0)) is True
    assert tree.search_eq(("a",)) == [(0, 1)]
    assert tree.delete(("a",), (9, 9)) is False


def test_splits_preserve_order_with_many_keys():
    tree = make(order=4)
    keys = [f"k{i:04d}" for i in range(500)]
    for i, key in enumerate(keys):
        tree.insert((key,), (i, 0))
    scanned = [k for k, _ in tree.scan_range(None, True, None, True)]
    assert scanned == sorted(encode_key((k,)) for k in keys)
    assert tree.nlevels > 1


def test_range_scan_inclusive_exclusive():
    tree = make()
    for i in range(10):
        tree.insert((i,), (i, 0))
    rids = [rid for _, rid in tree.scan_range((3,), True, (6,), True)]
    assert rids == [(3, 0), (4, 0), (5, 0), (6, 0)]
    rids = [rid for _, rid in tree.scan_range((3,), False, (6,), False)]
    assert rids == [(4, 0), (5, 0)]


def test_range_scan_unbounded_sides():
    tree = make()
    for i in range(5):
        tree.insert((i,), (i, 0))
    assert [r for _, r in tree.scan_range(None, True, (2,), True)] == [
        (0, 0), (1, 0), (2, 0)]
    assert [r for _, r in tree.scan_range((3,), True, None, True)] == [
        (3, 0), (4, 0)]


def test_prefix_scan_on_composite_key():
    tree = BTree("idx", "t", ("a", "b"), unique=False, order=8)
    tree.insert((1, "x"), (0, 0))
    tree.insert((1, "y"), (0, 1))
    tree.insert((2, "x"), (0, 2))
    rids = [rid for _, rid in tree.scan_range((1,), True, (1,), True)]
    assert rids == [(0, 0), (0, 1)]


def test_next_key_after():
    tree = make()
    for value in (10, 20, 30):
        tree.insert((value,), (value, 0))
    assert tree.next_key_after((10,)) == encode_key((20,))
    assert tree.next_key_after((15,)) == encode_key((20,))
    assert tree.next_key_after((30,)) is INFINITY_KEY
    assert tree.next_key_after(None) == encode_key((10,))


def test_next_key_skips_equal_duplicates():
    tree = make()
    tree.insert((10,), (0, 0))
    tree.insert((10,), (0, 1))
    tree.insert((20,), (0, 2))
    assert tree.next_key_after((10,)) == encode_key((20,))


def test_null_sorts_lowest():
    tree = make()
    tree.insert((None,), (0, 0))
    tree.insert((1,), (0, 1))
    scanned = [rid for _, rid in tree.scan_range(None, True, None, True)]
    assert scanned == [(0, 0), (0, 1)]


def test_mixed_type_keys_order_stably():
    assert encode_value(None) < encode_value(5) < encode_value("a")


def test_clear():
    tree = make()
    tree.insert((1,), (0, 0))
    tree.clear()
    assert len(tree) == 0
    assert tree.search_eq((1,)) == []


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=300))
def test_property_inserted_keys_all_findable(values):
    tree = BTree("idx", "t", ("k",), unique=False, order=6)
    for i, value in enumerate(values):
        tree.insert((value,), (i, 0))
    for i, value in enumerate(values):
        assert (i, 0) in tree.search_eq((value,))
    scanned = [k for k, _ in tree.scan_range(None, True, None, True)]
    assert scanned == sorted(scanned)
    assert len(scanned) == len(values)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=50)),
                min_size=1, max_size=200))
def test_property_matches_reference_model(ops):
    """Insert/delete fuzz against a sorted-list reference model."""
    tree = BTree("idx", "t", ("k",), unique=False, order=5)
    model: list[tuple[int, tuple]] = []
    for i, (is_insert, value) in enumerate(ops):
        if is_insert:
            tree.insert((value,), (i, 0))
            model.append((value, (i, 0)))
        elif model:
            value, rid = model.pop()
            assert tree.delete((value,), rid) is True
    expected = sorted((encode_key((v,)), rid) for v, rid in model)
    actual = list(tree.scan_range(None, True, None, True))
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=1000), min_size=2,
               max_size=100))
def test_property_next_key_matches_sorted_order(values):
    tree = BTree("idx", "t", ("k",), unique=True, order=7)
    ordered = sorted(values)
    for i, value in enumerate(ordered):
        tree.insert((value,), (i, 0))
    for a, b in zip(ordered, ordered[1:]):
        assert tree.next_key_after((a,)) == encode_key((b,))
    assert tree.next_key_after((ordered[-1],)) is INFINITY_KEY


# ------------------------------------------------------------------- bulk load

def test_bulk_load_empty_input():
    tree = make()
    tree.bulk_load([])
    assert len(tree) == 0
    assert tree.search_eq(("a",)) == []
    tree.insert(("a",), (0, 0))          # the empty tree is still usable
    assert tree.search_eq(("a",)) == [(0, 0)]


def test_bulk_load_keeps_duplicates_on_non_unique():
    tree = make(order=4)
    pairs = [(encode_key(("a",)), (0, i)) for i in range(5)]
    pairs += [(encode_key(("b",)), (1, 0))]
    tree.bulk_load(pairs)
    assert sorted(tree.search_eq(("a",))) == [(0, i) for i in range(5)]
    assert tree.search_eq(("b",)) == [(1, 0)]
    assert len(tree) == 6


def test_bulk_load_sorts_out_of_order_input():
    """The build SORTS its input rather than requiring pre-sorted pairs
    (the chosen contract — callers hand it raw (key, rid) mixes); feed
    it reversed input and assert full ordering."""
    tree = make(order=4)
    keys = [f"k{i:03d}" for i in range(100)]
    pairs = [(encode_key((k,)), (i, 0)) for i, k in enumerate(keys)]
    pairs.reverse()
    tree.bulk_load(pairs)
    scanned = [k for k, _ in tree.scan_range(None, True, None, True)]
    assert scanned == sorted(encode_key((k,)) for k in keys)
    assert tree.nlevels > 1


def test_bulk_load_differential_against_per_row():
    """10k random keys (with duplicates): the bottom-up build must be
    observationally identical to per-row inserts."""
    import random
    rng = random.Random(7)
    keys = [rng.randrange(100_000) for _ in range(10_000)]
    per_row = make(order=64)
    for i, k in enumerate(keys):
        per_row.insert((k,), (i, 0))
    bulk = make(order=64)
    bulk.bulk_load([(encode_key((k,)), (i, 0))
                    for i, k in enumerate(keys)])
    assert len(bulk) == len(per_row) == 10_000
    assert list(bulk.items()) == list(per_row.items())
    for k in rng.sample(keys, 50):
        assert sorted(bulk.search_eq((k,))) == sorted(
            per_row.search_eq((k,)))
    probe = rng.randrange(100_000)
    assert bulk.next_key_after(encode_key((probe,))) == \
        per_row.next_key_after(encode_key((probe,)))


def test_bulk_load_replaces_prior_contents():
    tree = make()
    tree.insert(("old",), (9, 9))
    tree.bulk_load([(encode_key(("new",)), (0, 0))])
    assert tree.search_eq(("old",)) == []
    assert tree.search_eq(("new",)) == [(0, 0)]
    assert len(tree) == 1

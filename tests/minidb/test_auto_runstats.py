"""Auto-RUNSTATS: mutation counters trigger threshold-based refreshes.

The engine keeps a volatile per-table mutation counter (DB2's in-memory
UDI counters); at commit, any table whose counter crossed
``threshold + fraction * card`` gets a RUNSTATS, bumping the stats
version so cached plans re-bind. Hand-crafted (manual) statistics are
never overwritten — the paper's pinning guard stays authoritative.
"""

import pytest

from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    cfg.setdefault("auto_runstats", True)
    cfg.setdefault("auto_runstats_threshold", 20)
    cfg.setdefault("auto_runstats_fraction", 0.5)
    db = Database(sim, "autostats", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(setup())
    return db


def insert_rows(db, start, count, per_commit=None):
    def go():
        session = db.session()
        for i in range(start, start + count):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (i, f"v{i}"))
            if per_commit and (i - start + 1) % per_commit == 0:
                yield from session.commit()
        yield from session.commit()

    db.sim.run_process(go())


def test_validation():
    with pytest.raises(ValueError):
        DBConfig(auto_runstats_threshold=0).validate()
    with pytest.raises(ValueError):
        DBConfig(auto_runstats_fraction=-0.1).validate()


def test_threshold_trigger_at_commit(sim):
    db = make_db(sim)
    insert_rows(db, 0, 19)
    assert db.metrics.auto_runstats_runs == 0     # below threshold
    assert db.catalog.stats_for("t").card == 0    # still newborn stats
    insert_rows(db, 19, 1)
    assert db.metrics.auto_runstats_runs == 1     # 20th row trips it
    stats = db.catalog.stats_for("t")
    assert stats.card == 20
    assert not stats.manual
    assert db.stats_mutations.get("t", 0) == 0    # counter reset


def test_refresh_scales_with_cardinality(sim):
    """After a refresh at card=N the next one needs threshold + N/2 more
    mutations (fraction=0.5) — big tables refresh proportionally."""
    db = make_db(sim)
    insert_rows(db, 0, 20)
    assert db.metrics.auto_runstats_runs == 1     # card now 20
    insert_rows(db, 20, 29)                       # 29 < 20 + 0.5*20
    assert db.metrics.auto_runstats_runs == 1
    insert_rows(db, 49, 1)                        # 30th crosses
    assert db.metrics.auto_runstats_runs == 2
    assert db.catalog.stats_for("t").card == 50


def test_disabled_by_default(sim):
    db = make_db(sim, auto_runstats=False)
    insert_rows(db, 0, 100)
    assert db.metrics.auto_runstats_runs == 0
    assert db.catalog.stats_for("t").card == 0    # stale, as DB2 ships


def test_manual_stats_are_never_overwritten(sim):
    """The E4 pinning guard wins: set_stats marks statistics manual and
    auto-RUNSTATS skips the table no matter how much it mutates."""
    db = make_db(sim)
    db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})
    insert_rows(db, 0, 200)
    assert db.metrics.auto_runstats_runs == 0
    stats = db.catalog.stats_for("t")
    assert stats.manual
    assert stats.card == 1_000_000                # pin intact


def test_user_runstats_resets_the_counter(sim):
    db = make_db(sim)
    insert_rows(db, 0, 15)                        # below threshold
    assert db.stats_mutations.get("t", 0) == 15
    db.runstats("t")
    assert db.stats_mutations.get("t", 0) == 0    # fresh stats, fresh count
    insert_rows(db, 15, 15)                       # 15 < 20 + 0.5*15
    assert db.metrics.auto_runstats_runs == 0


def test_updates_and_deletes_count_as_mutations(sim):
    db = make_db(sim, auto_runstats_threshold=10,
                 auto_runstats_fraction=0.0)
    insert_rows(db, 0, 10)
    assert db.metrics.auto_runstats_runs == 1

    def churn():
        session = db.session()
        yield from session.execute(
            "UPDATE t SET v = ? WHERE k < ?", ("x", 6))   # 6 rows
        yield from session.execute(
            "DELETE FROM t WHERE k >= ?", (6,))            # 4 rows
        yield from session.commit()

    sim.run_process(churn())
    assert db.metrics.auto_runstats_runs == 2
    assert db.catalog.stats_for("t").card == 6


def test_crash_loses_the_volatile_counters(sim):
    """Like DB2's in-memory UDI counters: a crash forgets accumulated
    mutations; post-restart churn starts the count from zero."""
    db = make_db(sim)
    insert_rows(db, 0, 19)
    assert db.stats_mutations.get("t", 0) == 19
    db.crash()
    db.restart()
    assert db.stats_mutations == {}
    insert_rows(db, 19, 1)                        # 1 < threshold now
    assert db.metrics.auto_runstats_runs == 0


def test_refresh_rebinds_cached_plans(sim):
    """The payoff: a scan plan bound while the table looked empty flips
    to the index automatically once auto-RUNSTATS sees the growth."""
    db = make_db(sim, auto_runstats_threshold=100,
                 auto_runstats_fraction=0.0)
    sql = "SELECT v FROM t WHERE k = ?"
    assert db.explain(sql)["access"] == "table_scan"   # card=0 plan
    insert_rows(db, 0, 3000, per_commit=100)
    assert db.metrics.auto_runstats_runs >= 1
    assert db.explain(sql)["access"] == "index_scan"
    assert db.metrics.plan_invalidations >= 1

"""Crash-at-every-WAL-record recovery sweep.

Runs a fixed mixed DDL/DML trace, then for *every* durable log prefix L
rebuilds the identical trace on a fresh engine, truncates the durable
log to L, crashes, restarts, and checks the recovered state against the
snapshot taken at the last transaction end whose record lies inside the
prefix. Each sweep point also checks index↔heap agreement and that an
immediate second crash/restart is a no-op (idempotent recovery).

The expected-state model relies on two engine facts:

* the catalog is non-transactional (DDL is durable the moment it runs),
  so after any crash the catalog is the full trace's catalog — a table
  whose inserts fell past the prefix simply recovers empty;
* with no checkpoint and no buffer-pool eviction the disk holds no heap
  pages, so *every* durable prefix is a legitimate crash state (asserted
  via ``pool.metrics.page_writes == 0`` before each crash).

A fast scripted trace runs in tier 1; a larger randomized sweep is
marked ``slow`` and excluded from the default run. Every sweep is
parametrized over ``mvcc`` on/off: with versioning on, each prefix
additionally proves the rebuilt lineage chains agree with the base
rows (a snapshot at the WAL tail sees exactly the committed state).
"""

import random
from collections import Counter

import pytest

from repro.kernel import Simulator
from repro.minidb import Database, DBConfig


def snapshot(db):
    """Current contents of every table, sorted for comparison."""
    return {name: sorted(db.table_rows(name)) for name in db.catalog.tables}


def expected_at(snaps, prefix_lsn):
    """State of the last transaction end with LSN ≤ prefix_lsn."""
    state = {}
    for lsn, snap in snaps:
        if lsn > prefix_lsn:
            break
        state = snap
    return state


def check_recovered_state(db, expected):
    for table in db.catalog.tables:
        assert sorted(db.table_rows(table)) == expected.get(table, []), \
            f"table {table} diverged"


def check_indexes(db):
    """Every heap row reachable through each index, and nothing extra."""
    for index in db.catalog.indexes.values():
        table = db.catalog.tables[index.table]
        btree = db.btrees[index.name]
        rows = list(db.heaps[index.table].scan())
        assert len(btree) == len(rows), f"index {index.name} size diverged"
        for rid, row in rows:
            key = tuple(row[table.position(c)] for c in index.columns)
            assert rid in btree.search_eq(key), \
                f"index {index.name} lost rid {rid} for key {key}"


def check_versions(db):
    """With MVCC on and no live transactions, a snapshot at the WAL tail
    must agree with the base rows — recovery rebuilt the chains right."""
    if not db.config.mvcc or db.txns.active:
        return
    for table in db.catalog.tables:
        assert (Counter(db.snapshot_table_rows(table))
                == Counter(db.table_rows(table))), \
            f"version chains diverged on {table}"


def run_scripted_trace(instant=True, mvcc=True):
    """The fixed mixed DDL/DML trace; returns (db, [(end_lsn, snapshot)])."""
    sim = Simulator(seed=0)
    db = Database(sim, "sweep", DBConfig(instant_recovery=instant,
                                         mvcc=mvcc))
    snaps = []

    def snap():
        snaps.append((db.wal.tail_lsn, snapshot(db)))

    def script():
        s = db.session()
        yield from s.execute("CREATE TABLE a (k INT, v TEXT)")
        yield from s.execute("CREATE UNIQUE INDEX a_k ON a (k)")
        yield from s.commit()
        snap()
        for k, v in [(1, "one"), (2, "two"), (3, "three")]:
            yield from s.execute(
                "INSERT INTO a (k, v) VALUES (?, ?)", (k, v))
        yield from s.commit()
        snap()
        # DDL mid-trace, then DML against old and new tables in one txn.
        yield from s.execute("CREATE TABLE b (k INT, n INT)")
        yield from s.execute("CREATE UNIQUE INDEX b_k ON b (k)")
        yield from s.execute("INSERT INTO b (k, n) VALUES (10, 100)")
        yield from s.execute("UPDATE a SET v = 'TWO' WHERE k = 2")
        yield from s.commit()
        snap()
        # An explicitly rolled-back transaction: CLR + ABORT records. A
        # prefix cutting inside it exercises undo with a partial CLR chain.
        yield from s.execute("INSERT INTO a (k, v) VALUES (4, 'four')")
        yield from s.execute("DELETE FROM b WHERE k = 10")
        yield from s.rollback()
        snap()
        yield from s.execute("DELETE FROM a WHERE k = 1")
        yield from s.execute("INSERT INTO b (k, n) VALUES (11, 110)")
        yield from s.commit()
        snap()
        # A table that lives and dies within the trace: for prefixes
        # between its commit and the drop, the (non-transactional) drop
        # already removed it — redo must skip its records.
        yield from s.execute("CREATE TABLE c (k INT)")
        yield from s.execute("INSERT INTO c (k) VALUES (7)")
        yield from s.commit()
        snap()
        yield from s.execute("DROP TABLE c")
        yield from s.commit()
        snap()
        yield from s.execute("UPDATE b SET n = 111 WHERE k = 11")
        yield from s.execute("INSERT INTO a (k, v) VALUES (5, 'five')")
        yield from s.commit()
        snap()
        # In-flight loser whose records are durable at crash time.
        yield from s.execute("INSERT INTO a (k, v) VALUES (6, 'six')")
        yield from s.execute("UPDATE b SET n = 999 WHERE k = 10")
        yield from s.execute("DELETE FROM a WHERE k = 3")
        db.wal.force()

    sim.run_process(script())
    return db, snaps


def run_random_trace(seed, instant=True, mvcc=True):
    """Seeded random DML trace over two tables; same return shape."""
    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    db = Database(sim, "sweep", DBConfig(instant_recovery=instant,
                                         mvcc=mvcc))
    snaps = []

    def script():
        s = db.session()
        yield from s.execute("CREATE TABLE a (k INT, v TEXT)")
        yield from s.execute("CREATE UNIQUE INDEX a_k ON a (k)")
        yield from s.execute("CREATE TABLE b (k INT, n INT)")
        yield from s.commit()
        snaps.append((db.wal.tail_lsn, snapshot(db)))
        live = []
        next_k = 0
        for _ in range(60):
            roll = rng.random()
            if roll < 0.40 or not live:
                next_k += 1
                yield from s.execute(
                    "INSERT INTO a (k, v) VALUES (?, ?)",
                    (next_k, f"v{next_k}"))
                yield from s.execute(
                    "INSERT INTO b (k, n) VALUES (?, ?)",
                    (next_k, next_k * 10))
                live.append(next_k)
            elif roll < 0.65:
                k = rng.choice(live)
                yield from s.execute(
                    "UPDATE a SET v = ? WHERE k = ?", (f"u{k}", k))
            elif roll < 0.80:
                k = live.pop(rng.randrange(len(live)))
                yield from s.execute("DELETE FROM a WHERE k = ?", (k,))
            elif roll < 0.92:
                yield from s.commit()
                snaps.append((db.wal.tail_lsn, snapshot(db)))
            else:
                yield from s.rollback()
                # rollback restores the last committed state: re-derive
                # the live key set from it rather than tracking undo
                live[:] = [row[0] for row in db.table_rows("a")]
                snaps.append((db.wal.tail_lsn, snapshot(db)))
        db.wal.force()  # whatever is in flight becomes a durable loser

    sim.run_process(script())
    return db, snaps


def sweep(build, prefixes=None):
    """Crash/restart at each durable prefix; verify against the model."""
    reference, _ = build()
    tail = reference.wal.tail_lsn
    points = range(tail + 1) if prefixes is None else prefixes
    for prefix in points:
        db, snaps = build()
        assert db.wal.tail_lsn == tail, "trace is not deterministic"
        assert db.pool.metrics.page_writes == 0, \
            "dirty page reached disk: arbitrary prefixes are no longer valid"
        db.wal.flushed_upto = min(prefix, db.wal.tail_lsn)
        db.crash()
        db.restart()
        expected = expected_at(snaps, prefix)
        check_recovered_state(db, expected)
        check_indexes(db)
        check_versions(db)
        # Recovery checkpointed; an immediate second crash loses nothing.
        db.crash()
        db.restart()
        check_recovered_state(db, expected)
        check_indexes(db)
        check_versions(db)
    return tail


@pytest.mark.parametrize("mvcc", [True, False], ids=["mvcc", "nomvcc"])
@pytest.mark.parametrize("instant", [True, False],
                         ids=["instant", "classic"])
def test_scripted_trace_every_prefix(instant, mvcc):
    tail = sweep(lambda: run_scripted_trace(instant, mvcc))
    assert tail >= 20  # the trace is big enough to mean something


def test_prefix_zero_recovers_to_empty_tables():
    db, _ = run_scripted_trace()
    db.wal.flushed_upto = 0
    db.crash()
    db.restart()
    # DDL survives (non-transactional catalog) but every row is gone.
    assert set(db.catalog.tables) == {"a", "b"}
    assert db.table_rows("a") == []
    assert db.table_rows("b") == []


def test_full_prefix_equals_clean_restart():
    db, snaps = run_scripted_trace()
    db.crash()  # flushed_upto already at tail (loser was forced)
    summary = db.restart()
    assert summary["losers"], "the in-flight tail txn must be undone"
    check_recovered_state(db, snaps[-1][1])
    check_indexes(db)


@pytest.mark.slow
@pytest.mark.parametrize("mvcc", [True, False], ids=["mvcc", "nomvcc"])
@pytest.mark.parametrize("instant", [True, False],
                         ids=["instant", "classic"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_trace_every_prefix(seed, instant, mvcc):
    tail = sweep(lambda: run_random_trace(seed, instant, mvcc))
    assert tail >= 80


# ------------------------------------------------------- checkpointed sweep

def run_checkpointed_trace(instant=True, mvcc=True):
    """Scripted trace with a mid-trace checkpoint: disk pages, index
    images and per-page chain heads are all live at crash time. Returns
    (db, snaps, checkpoint_lsn)."""
    sim = Simulator(seed=0)
    # Small pages spread the rows over several per-page chains.
    db = Database(sim, "sweep", DBConfig(instant_recovery=instant,
                                         rows_per_page=2, mvcc=mvcc))
    snaps = []

    def snap():
        snaps.append((db.wal.tail_lsn, snapshot(db)))

    def script():
        s = db.session()
        yield from s.execute("CREATE TABLE a (k INT, v TEXT)")
        yield from s.execute("CREATE UNIQUE INDEX a_k ON a (k)")
        yield from s.commit()
        for k in range(6):
            yield from s.execute(
                "INSERT INTO a (k, v) VALUES (?, ?)", (k, f"v{k}"))
        yield from s.commit()
        snap()
        db.checkpoint()
        # Post-checkpoint tail: updates to checkpointed pages, fresh
        # pages, a rollback, and a durable in-flight loser.
        yield from s.execute("UPDATE a SET v = 'U2' WHERE k = 2")
        yield from s.execute("DELETE FROM a WHERE k = 0")
        yield from s.commit()
        snap()
        for k in range(6, 10):
            yield from s.execute(
                "INSERT INTO a (k, v) VALUES (?, ?)", (k, f"v{k}"))
        yield from s.commit()
        snap()
        yield from s.execute("INSERT INTO a (k, v) VALUES (90, 'drop')")
        yield from s.rollback()
        snap()
        yield from s.execute("UPDATE a SET v = 'LOSER' WHERE k = 4")
        yield from s.execute("INSERT INTO a (k, v) VALUES (91, 'loser')")
        db.wal.force()

    sim.run_process(script())
    return db, snaps, db.wal.last_checkpoint_lsn


@pytest.mark.parametrize("mvcc", [True, False], ids=["mvcc", "nomvcc"])
@pytest.mark.parametrize("instant", [True, False],
                         ids=["instant", "classic"])
def test_checkpointed_trace_every_tail_prefix(instant, mvcc):
    """Per-page-chain sweep: every prefix at or past the checkpoint is a
    legitimate crash state (the checkpoint flushed the pages it covers),
    and recovery from chain heads + index images must match the model."""
    reference, _, ckpt = run_checkpointed_trace(instant, mvcc)
    tail = reference.wal.tail_lsn
    assert ckpt > 0 and tail > ckpt + 5
    for prefix in range(ckpt, tail + 1):
        db, snaps, _ = run_checkpointed_trace(instant, mvcc)
        db.wal.flushed_upto = prefix
        db.crash()
        db.restart()
        expected = expected_at(snaps, prefix)
        check_recovered_state(db, expected)
        check_indexes(db)
        check_versions(db)
        # Double restart: recovery's end checkpoint re-snapshots the
        # still-pending chain heads, so an immediate second crash —
        # i.e. a crash DURING the lazy replay — loses nothing.
        db.crash()
        db.restart()
        check_recovered_state(db, expected)
        check_indexes(db)
        check_versions(db)


# ------------------------------------------------------------- lazy replay

def test_replay_gate_replays_pages_on_first_touch():
    """After an instant restart the heap gate replays exactly the pages
    a reader touches, on demand, and uninstalls itself once dry."""
    db, snaps, _ = run_checkpointed_trace(instant=True)
    db.crash()
    db.restart()
    assert db.replay_pending, "expected pending per-page chains"
    assert db.heaps["a"].replay_hook is not None
    before = dict(db.replay_pending)
    replayed = db.metrics.pages_replayed  # undo already replayed its pages
    # Touch one pending page directly: only that key drains.
    table, page_no = sorted(before)[0]
    db.heaps[table]._page_for(page_no)
    assert (table, page_no) not in db.replay_pending
    assert len(db.replay_pending) == len(before) - 1
    assert db.metrics.pages_replayed == replayed + 1
    # A full scan touches everything; the gate must then come off.
    check_recovered_state(db, expected_at(snaps, db.wal.tail_lsn))
    assert db.replay_pending == {}
    assert all(heap.replay_hook is None for heap in db.heaps.values())


def test_crash_during_lazy_replay_with_new_work_loses_nothing():
    """Commit NEW transactions against a partially-replayed engine, crash
    again mid-replay, and recover: both the old rows (still parked in
    per-page chains) and the new work must survive."""
    db, snaps, _ = run_checkpointed_trace(instant=True)
    db.crash()
    db.restart()
    assert len(db.replay_pending) > 1, "need >1 pending page to be partial"
    expected = dict(expected_at(snaps, db.wal.tail_lsn))

    def new_work():
        s = db.session()
        yield from s.execute("INSERT INTO a (k, v) VALUES (50, 'new')")
        yield from s.commit()

    db.sim.run_process(new_work())
    expected["a"] = sorted(expected["a"] + [(50, "new")])
    # The insert replayed the page it landed on; others are still cold.
    assert db.replay_pending, "crash must land mid-replay"
    db.crash()
    db.restart()
    check_recovered_state(db, expected)
    check_indexes(db)
    # And a third restart after full replay is still a no-op.
    check_recovered_state(db, expected)

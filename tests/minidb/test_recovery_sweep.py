"""Crash-at-every-WAL-record recovery sweep.

Runs a fixed mixed DDL/DML trace, then for *every* durable log prefix L
rebuilds the identical trace on a fresh engine, truncates the durable
log to L, crashes, restarts, and checks the recovered state against the
snapshot taken at the last transaction end whose record lies inside the
prefix. Each sweep point also checks index↔heap agreement and that an
immediate second crash/restart is a no-op (idempotent recovery).

The expected-state model relies on two engine facts:

* the catalog is non-transactional (DDL is durable the moment it runs),
  so after any crash the catalog is the full trace's catalog — a table
  whose inserts fell past the prefix simply recovers empty;
* with no checkpoint and no buffer-pool eviction the disk holds no heap
  pages, so *every* durable prefix is a legitimate crash state (asserted
  via ``pool.metrics.page_writes == 0`` before each crash).

A fast scripted trace runs in tier 1; a larger randomized sweep is
marked ``slow`` and excluded from the default run.
"""

import random

import pytest

from repro.kernel import Simulator
from repro.minidb import Database, DBConfig


def snapshot(db):
    """Current contents of every table, sorted for comparison."""
    return {name: sorted(db.table_rows(name)) for name in db.catalog.tables}


def expected_at(snaps, prefix_lsn):
    """State of the last transaction end with LSN ≤ prefix_lsn."""
    state = {}
    for lsn, snap in snaps:
        if lsn > prefix_lsn:
            break
        state = snap
    return state


def check_recovered_state(db, expected):
    for table in db.catalog.tables:
        assert sorted(db.table_rows(table)) == expected.get(table, []), \
            f"table {table} diverged"


def check_indexes(db):
    """Every heap row reachable through each index, and nothing extra."""
    for index in db.catalog.indexes.values():
        table = db.catalog.tables[index.table]
        btree = db.btrees[index.name]
        rows = list(db.heaps[index.table].scan())
        assert len(btree) == len(rows), f"index {index.name} size diverged"
        for rid, row in rows:
            key = tuple(row[table.position(c)] for c in index.columns)
            assert rid in btree.search_eq(key), \
                f"index {index.name} lost rid {rid} for key {key}"


def run_scripted_trace():
    """The fixed mixed DDL/DML trace; returns (db, [(end_lsn, snapshot)])."""
    sim = Simulator(seed=0)
    db = Database(sim, "sweep", DBConfig())
    snaps = []

    def snap():
        snaps.append((db.wal.tail_lsn, snapshot(db)))

    def script():
        s = db.session()
        yield from s.execute("CREATE TABLE a (k INT, v TEXT)")
        yield from s.execute("CREATE UNIQUE INDEX a_k ON a (k)")
        yield from s.commit()
        snap()
        for k, v in [(1, "one"), (2, "two"), (3, "three")]:
            yield from s.execute(
                "INSERT INTO a (k, v) VALUES (?, ?)", (k, v))
        yield from s.commit()
        snap()
        # DDL mid-trace, then DML against old and new tables in one txn.
        yield from s.execute("CREATE TABLE b (k INT, n INT)")
        yield from s.execute("CREATE UNIQUE INDEX b_k ON b (k)")
        yield from s.execute("INSERT INTO b (k, n) VALUES (10, 100)")
        yield from s.execute("UPDATE a SET v = 'TWO' WHERE k = 2")
        yield from s.commit()
        snap()
        # An explicitly rolled-back transaction: CLR + ABORT records. A
        # prefix cutting inside it exercises undo with a partial CLR chain.
        yield from s.execute("INSERT INTO a (k, v) VALUES (4, 'four')")
        yield from s.execute("DELETE FROM b WHERE k = 10")
        yield from s.rollback()
        snap()
        yield from s.execute("DELETE FROM a WHERE k = 1")
        yield from s.execute("INSERT INTO b (k, n) VALUES (11, 110)")
        yield from s.commit()
        snap()
        # A table that lives and dies within the trace: for prefixes
        # between its commit and the drop, the (non-transactional) drop
        # already removed it — redo must skip its records.
        yield from s.execute("CREATE TABLE c (k INT)")
        yield from s.execute("INSERT INTO c (k) VALUES (7)")
        yield from s.commit()
        snap()
        yield from s.execute("DROP TABLE c")
        yield from s.commit()
        snap()
        yield from s.execute("UPDATE b SET n = 111 WHERE k = 11")
        yield from s.execute("INSERT INTO a (k, v) VALUES (5, 'five')")
        yield from s.commit()
        snap()
        # In-flight loser whose records are durable at crash time.
        yield from s.execute("INSERT INTO a (k, v) VALUES (6, 'six')")
        yield from s.execute("UPDATE b SET n = 999 WHERE k = 10")
        yield from s.execute("DELETE FROM a WHERE k = 3")
        db.wal.force()

    sim.run_process(script())
    return db, snaps


def run_random_trace(seed):
    """Seeded random DML trace over two tables; same return shape."""
    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    db = Database(sim, "sweep", DBConfig())
    snaps = []

    def script():
        s = db.session()
        yield from s.execute("CREATE TABLE a (k INT, v TEXT)")
        yield from s.execute("CREATE UNIQUE INDEX a_k ON a (k)")
        yield from s.execute("CREATE TABLE b (k INT, n INT)")
        yield from s.commit()
        snaps.append((db.wal.tail_lsn, snapshot(db)))
        live = []
        next_k = 0
        for _ in range(60):
            roll = rng.random()
            if roll < 0.40 or not live:
                next_k += 1
                yield from s.execute(
                    "INSERT INTO a (k, v) VALUES (?, ?)",
                    (next_k, f"v{next_k}"))
                yield from s.execute(
                    "INSERT INTO b (k, n) VALUES (?, ?)",
                    (next_k, next_k * 10))
                live.append(next_k)
            elif roll < 0.65:
                k = rng.choice(live)
                yield from s.execute(
                    "UPDATE a SET v = ? WHERE k = ?", (f"u{k}", k))
            elif roll < 0.80:
                k = live.pop(rng.randrange(len(live)))
                yield from s.execute("DELETE FROM a WHERE k = ?", (k,))
            elif roll < 0.92:
                yield from s.commit()
                snaps.append((db.wal.tail_lsn, snapshot(db)))
            else:
                yield from s.rollback()
                # rollback restores the last committed state: re-derive
                # the live key set from it rather than tracking undo
                live[:] = [row[0] for row in db.table_rows("a")]
                snaps.append((db.wal.tail_lsn, snapshot(db)))
        db.wal.force()  # whatever is in flight becomes a durable loser

    sim.run_process(script())
    return db, snaps


def sweep(build, prefixes=None):
    """Crash/restart at each durable prefix; verify against the model."""
    reference, _ = build()
    tail = reference.wal.tail_lsn
    points = range(tail + 1) if prefixes is None else prefixes
    for prefix in points:
        db, snaps = build()
        assert db.wal.tail_lsn == tail, "trace is not deterministic"
        assert db.pool.metrics.page_writes == 0, \
            "dirty page reached disk: arbitrary prefixes are no longer valid"
        db.wal.flushed_upto = min(prefix, db.wal.tail_lsn)
        db.crash()
        db.restart()
        expected = expected_at(snaps, prefix)
        check_recovered_state(db, expected)
        check_indexes(db)
        # Recovery checkpointed; an immediate second crash loses nothing.
        db.crash()
        db.restart()
        check_recovered_state(db, expected)
        check_indexes(db)
    return tail


def test_scripted_trace_every_prefix():
    tail = sweep(run_scripted_trace)
    assert tail >= 20  # the trace is big enough to mean something


def test_prefix_zero_recovers_to_empty_tables():
    db, _ = run_scripted_trace()
    db.wal.flushed_upto = 0
    db.crash()
    db.restart()
    # DDL survives (non-transactional catalog) but every row is gone.
    assert set(db.catalog.tables) == {"a", "b"}
    assert db.table_rows("a") == []
    assert db.table_rows("b") == []


def test_full_prefix_equals_clean_restart():
    db, snaps = run_scripted_trace()
    db.crash()  # flushed_upto already at tail (loser was forced)
    summary = db.restart()
    assert summary["losers"], "the in-flight tail txn must be undone"
    check_recovered_state(db, snaps[-1][1])
    check_indexes(db)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_trace_every_prefix(seed):
    tail = sweep(lambda: run_random_trace(seed))
    assert tail >= 80

"""Concurrent SQL behaviour: isolation, next-key locking, blocking writes.

These tests exercise the exact engine mechanics that the paper's lessons
(and our experiments E3/E4/E5) are built on.
"""


from repro.errors import TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    config = DBConfig(**cfg)
    db = Database(sim, "t", config)

    def setup():
        session = db.session()
        yield from session.execute(
            "CREATE TABLE f (id INT, name TEXT, state TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX f_name ON f (name)")
        yield from session.execute("CREATE INDEX f_state ON f (state)")
        for i in range(20):
            yield from session.execute(
                "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
                (i, f"n{i:03d}", "linked"))
        yield from session.commit()
        # Hand-craft statistics the way tuned DLFM does (E4): otherwise the
        # optimizer would pick table scans on this small table and every
        # statement would serialize behind full-table row locks.
        db.set_table_stats("f", card=1_000_000,
                           colcard={"name": 1_000_000, "state": 5})

    sim.run_process(setup())
    return db


def test_writer_blocks_reader_until_commit():
    sim = Simulator()
    db = make_db(sim)
    trace = []

    def writer():
        session = db.session()
        yield from session.execute(
            "UPDATE f SET state = 'x' WHERE name = 'n005'")
        yield Timeout(5.0)
        yield from session.commit()
        trace.append(("committed", sim.now))

    def reader():
        session = db.session()
        yield Timeout(1.0)
        result = yield from session.execute(
            "SELECT state FROM f WHERE name = 'n005'")
        yield from session.commit()
        trace.append(("read", result.scalar(), sim.now))

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert trace == [("committed", 5.0), ("read", "x", 5.0)]


def test_no_dirty_read_of_rolled_back_update():
    sim = Simulator()
    db = make_db(sim)
    seen = {}

    def writer():
        session = db.session()
        yield from session.execute(
            "UPDATE f SET state = 'dirty' WHERE name = 'n003'")
        yield Timeout(3.0)
        yield from session.rollback()

    def reader():
        session = db.session()
        yield Timeout(1.0)
        result = yield from session.execute(
            "SELECT state FROM f WHERE name = 'n003'")
        yield from session.commit()
        seen["state"] = result.scalar()

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert seen["state"] == "linked"


def test_rr_readers_block_writer():
    sim = Simulator()
    db = make_db(sim, isolation="RR")
    trace = []

    def reader():
        session = db.session("RR")
        yield from session.execute("SELECT * FROM f WHERE name = 'n001'")
        yield Timeout(4.0)  # RR: S lock held until commit
        yield from session.commit()

    def writer():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute("DELETE FROM f WHERE name = 'n001'")
        yield from session.commit()
        trace.append(("deleted", sim.now))

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert trace == [("deleted", 4.0)]


def test_cs_readers_release_locks_at_statement_end():
    sim = Simulator()
    db = make_db(sim, isolation="CS")
    trace = []

    def reader():
        session = db.session("CS")
        yield from session.execute("SELECT * FROM f WHERE name = 'n001'")
        yield Timeout(4.0)  # CS: read locks already released
        yield from session.commit()

    def writer():
        session = db.session("CS")
        yield Timeout(1.0)
        yield from session.execute("DELETE FROM f WHERE name = 'n001'")
        yield from session.commit()
        trace.append(("deleted", sim.now))

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert trace == [("deleted", 1.0)]


def test_rr_phantom_protection_blocks_insert_into_scanned_range():
    """Next-key locking under RR prevents phantoms (when enabled)."""
    sim = Simulator()
    db = make_db(sim, isolation="RR", next_key_locking=True)
    trace = []

    def scanner():
        session = db.session("RR")
        result = yield from session.execute(
            "SELECT COUNT(*) FROM f WHERE name > 'n005' AND name < 'n010'")
        yield Timeout(5.0)
        again = yield from session.execute(
            "SELECT COUNT(*) FROM f WHERE name > 'n005' AND name < 'n010'")
        yield from session.commit()
        trace.append(("counts", result.scalar(), again.scalar()))

    def inserter():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute(
            "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
            (100, "n007x", "linked"))
        yield from session.commit()
        trace.append(("inserted", sim.now))

    sim.spawn(scanner())
    sim.spawn(inserter())
    sim.run()
    counts = next(t for t in trace if t[0] == "counts")
    assert counts[1] == counts[2]  # repeatable read held
    inserted = next(t for t in trace if t[0] == "inserted")
    assert inserted[1] >= 5.0  # insert waited for scanner commit


def test_nkl_off_allows_phantoms_under_rr():
    sim = Simulator()
    db = make_db(sim, isolation="RR", next_key_locking=False)
    trace = []

    def scanner():
        session = db.session("RR")
        first = yield from session.execute(
            "SELECT COUNT(*) FROM f WHERE name > 'n005' AND name < 'n010'")
        yield Timeout(5.0)
        second = yield from session.execute(
            "SELECT COUNT(*) FROM f WHERE name > 'n005' AND name < 'n010'")
        yield from session.commit()
        trace.append((first.scalar(), second.scalar()))

    def inserter():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute(
            "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
            (100, "n007x", "linked"))
        yield from session.commit()

    sim.spawn(scanner())
    sim.spawn(inserter())
    sim.run()
    first, second = trace[0]
    assert second == first + 1  # phantom appeared — NKL was off


def test_nkl_on_concurrent_adjacent_inserts_can_deadlock():
    """Lesson E3's mechanism: multi-index next-key X locks collide."""
    sim = Simulator()
    db = make_db(sim, next_key_locking=True, deadlock_check_interval=0.5)
    outcomes = []

    def inserter(name, state, delay):
        session = db.session()
        yield Timeout(delay)
        try:
            # Two statements → two opportunities to interleave next-key
            # locks in f_name and f_state in opposite orders.
            yield from session.execute(
                "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
                (200 + delay, name, state))
            yield Timeout(0.2)
            yield from session.execute(
                "UPDATE f SET state = ? WHERE name = ?", (state + "2", name))
            yield from session.commit()
            outcomes.append("ok")
        except TransactionAborted as err:
            outcomes.append(err.reason)

    sim.spawn(inserter("n0005", "linked", 0))
    sim.spawn(inserter("n0006", "linked", 0))
    sim.run()
    # With NKL on, adjacent keys share next-key locks: at least one
    # transaction blocks; depending on order one may die.
    assert len(outcomes) == 2


def test_nkl_off_concurrent_adjacent_inserts_proceed():
    sim = Simulator()
    db = make_db(sim, next_key_locking=False)
    outcomes = []

    def inserter(name):
        session = db.session()
        yield from session.execute(
            "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
            (300, name, "linked"))
        yield from session.commit()
        outcomes.append("ok")

    sim.spawn(inserter("p001"))
    sim.spawn(inserter("p002"))
    sim.run()
    assert outcomes == ["ok", "ok"]
    assert db.locks.metrics.deadlocks == 0


def test_deadlock_via_sql_updates_opposite_order():
    sim = Simulator()
    db = make_db(sim, deadlock_check_interval=0.5, next_key_locking=False)
    outcomes = []

    def txn(first, second, delay):
        session = db.session()
        try:
            yield from session.execute(
                "UPDATE f SET state = 'a' WHERE name = ?", (first,))
            yield Timeout(1.0 + delay)
            yield from session.execute(
                "UPDATE f SET state = 'b' WHERE name = ?", (second,))
            yield from session.commit()
            outcomes.append("ok")
        except TransactionAborted as err:
            outcomes.append(err.reason)

    sim.spawn(txn("n001", "n002", 0.0))
    sim.spawn(txn("n002", "n001", 0.1))
    sim.run()
    assert sorted(outcomes) == ["deadlock", "ok"]
    assert db.metrics.aborts_by_reason.get("deadlock") == 1


def test_lock_timeout_via_sql():
    sim = Simulator()
    db = make_db(sim, lock_timeout=3.0, next_key_locking=False)
    outcomes = []

    def holder():
        session = db.session()
        yield from session.execute(
            "UPDATE f SET state = 'z' WHERE name = 'n001'")
        yield Timeout(100.0)
        yield from session.commit()

    def victim():
        session = db.session()
        yield Timeout(1.0)
        try:
            yield from session.execute(
                "UPDATE f SET state = 'y' WHERE name = 'n001'")
        except TransactionAborted as err:
            outcomes.append((err.reason, sim.now))

    sim.spawn(holder())
    sim.spawn(victim())
    sim.run(until=50.0)
    assert outcomes == [("timeout", 4.0)]


def test_unique_check_race_closed_without_nkl():
    """Two concurrent inserts of the same key: one wins, one gets the
    duplicate error (the unique-index race closure DLFM relies on)."""
    sim = Simulator()
    db = make_db(sim, next_key_locking=False)
    outcomes = []

    def inserter():
        from repro.errors import DuplicateKeyError
        session = db.session()
        try:
            yield from session.execute(
                "INSERT INTO f (id, name, state) VALUES (?, ?, ?)",
                (400, "same-name", "linked"))
            yield from session.commit()
            outcomes.append("ok")
        except DuplicateKeyError:
            yield from session.rollback()
            outcomes.append("dup")

    sim.spawn(inserter())
    sim.spawn(inserter())
    sim.run()
    assert sorted(outcomes) == ["dup", "ok"]

    def count():
        session = db.session()
        result = yield from session.execute(
            "SELECT COUNT(*) FROM f WHERE name = 'same-name'")
        yield from session.commit()
        return result.scalar()

    assert sim.run_process(count()) == 1


def test_escalation_under_sql_table_scan_blocks_everyone():
    sim = Simulator()
    db = make_db(sim, locklist_size=30, maxlocks_fraction=0.3,
                 lock_timeout=5.0, isolation="RR")
    outcomes = []

    def big_scanner():
        session = db.session("RR")
        # 20 rows > 9-lock threshold → escalates to table S
        yield from session.execute("SELECT * FROM f")
        yield Timeout(20.0)
        yield from session.commit()

    def writer():
        session = db.session()
        yield Timeout(1.0)
        try:
            yield from session.execute(
                "UPDATE f SET state = 'w' WHERE name = 'n001'")
            outcomes.append(("ok", sim.now))
        except TransactionAborted as err:
            outcomes.append((err.reason, sim.now))

    sim.spawn(big_scanner())
    sim.spawn(writer())
    sim.run(until=60.0)
    assert db.locks.metrics.escalations >= 1
    assert outcomes[0][0] == "timeout"

"""Deferred index maintenance for LOAD (DB2's "load pending" state).

Between ``begin_bulk_load`` and ``end_bulk_load`` the table's B+trees
are NOT touched per row: entries collect in volatile pending state (so
index scans don't see the loaded rows), unique violations are still
caught against pending entries, aborts drop their deferred entries, a
crash discards the deferral entirely (restart rebuilds indexes from
durable state), and the final merge is one sorted bottom-up build.
"""

import pytest

from repro.errors import DuplicateKeyError
from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    cfg.setdefault("next_key_locking", False)
    db = Database(sim, "bulk", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.execute("CREATE INDEX t_v ON t (v)")
        yield from session.commit()

    sim.run_process(setup())
    return db


def insert_rows(db, keys, commit=True):
    def go():
        session = db.session()
        for k in keys:
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (k, f"v{k}"))
        if commit:
            yield from session.commit()
        else:
            yield from session.rollback()

    db.sim.run_process(go())


def end_bulk(db, table="t"):
    return db.sim.run_process(db.end_bulk_load(table))


def select_by_key(db, k):
    def go():
        session = db.session()
        result = yield from session.execute(
            "SELECT k, v FROM t WHERE k = ?", (k,))
        yield from session.commit()
        return result.rows

    return db.sim.run_process(go())


def test_deferral_keeps_btrees_empty_until_merge(sim):
    db = make_db(sim)
    db.begin_bulk_load("t")
    assert db.in_bulk_load("t")
    insert_rows(db, range(10))
    # Heap has the rows; the indexes haven't seen a single entry.
    assert len(list(db.heaps["t"].scan())) == 10
    assert len(db.btrees["t_k"]) == 0
    assert len(db.btrees["t_v"]) == 0
    assert db.metrics.bulk_entries_deferred == 20      # 10 rows × 2 indexes
    merged = end_bulk(db)
    assert merged == 20
    assert not db.in_bulk_load("t")
    assert len(db.btrees["t_k"]) == 10
    assert select_by_key(db, 7) == [(7, "v7")]


def test_unique_violation_caught_against_pending(sim):
    db = make_db(sim)
    db.begin_bulk_load("t")
    insert_rows(db, [1])
    with pytest.raises(DuplicateKeyError):
        insert_rows(db, [1])
    end_bulk(db)
    assert len(db.btrees["t_k"]) == 1


def test_abort_drops_deferred_entries(sim):
    db = make_db(sim)
    db.begin_bulk_load("t")
    insert_rows(db, [1, 2, 3], commit=False)          # rolled back
    insert_rows(db, [4, 5])
    assert end_bulk(db) == 4                           # 2 rows × 2 indexes
    assert len(db.btrees["t_k"]) == 2
    assert select_by_key(db, 1) == []
    assert select_by_key(db, 4) == [(4, "v4")]
    # The aborted keys are reusable: no ghost pending entry blocks them.
    insert_rows(db, [1])
    assert select_by_key(db, 1) == [(1, "v1")]


def test_crash_discards_deferral_and_rebuilds_indexes(sim):
    db = make_db(sim)
    db.begin_bulk_load("t")
    insert_rows(db, range(8))
    db.crash()
    db.restart()
    assert not db.in_bulk_load("t")
    assert len(db.btrees["t_k"]) == 8                  # rebuilt, not lost
    assert select_by_key(db, 3) == [(3, "v3")]


def test_checkpoint_during_bulk_merges_pending_into_image(sim):
    """A checkpoint taken mid-load must fold the pending entries into
    the stored index images — otherwise an instant restart would serve
    index scans missing committed rows."""
    db = make_db(sim)
    db.begin_bulk_load("t")
    insert_rows(db, range(6))
    db.checkpoint()
    insert_rows(db, range(6, 9))                       # post-checkpoint tail
    db.crash()
    db.restart()
    assert len(db.btrees["t_k"]) == 9
    assert select_by_key(db, 2) == [(2, "v2")]
    assert select_by_key(db, 8) == [(8, "v8")]


def test_create_index_during_bulk_sees_heap_rows(sim):
    db = make_db(sim)
    db.begin_bulk_load("t")
    insert_rows(db, range(5))

    def ddl():
        session = db.session()
        yield from session.execute("CREATE INDEX t_k2 ON t (k, v)")
        yield from session.commit()

    sim.run_process(ddl())
    # Built from the heap → already has the 5 loaded rows; rows loaded
    # from here on defer into it like the others.
    assert len(db.btrees["t_k2"]) == 5
    insert_rows(db, [5])
    assert len(db.btrees["t_k2"]) == 5
    end_bulk(db)
    assert len(db.btrees["t_k2"]) == 6
    assert len(db.btrees["t_k"]) == 6


def test_end_bulk_load_charges_discounted_index_time(sim):
    from repro.minidb.config import TimingModel
    timing = TimingModel(enabled=True, cpu_per_statement=0.0, page_io=0.0,
                         lock_op=0.0, rpc=0.0, log_force=0.0,
                         index_entry=0.01, bulk_index_factor=0.1)
    db = make_db(sim, timing=timing)
    db.begin_bulk_load("t")
    started = sim.now
    insert_rows(db, range(10))
    assert sim.now == started                          # nothing billed per row
    end_bulk(db)
    # 20 entries × 0.01 × 0.1 — one order cheaper than per-row.
    assert sim.now - started == pytest.approx(0.02)

"""RR vs RS vs CS isolation semantics, plus DROP INDEX and the measured
Fig-4 claim that SQL commit acquires no locks."""

import pytest

from repro.errors import CatalogError
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    db = Database(sim, "iso", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v INT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(10):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, 0)", (k,))
        yield from session.commit()
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    return db


def test_rr_blocks_phantoms_rs_and_cs_do_not():
    outcomes = {}
    for isolation in ("RR", "RS", "CS"):
        sim = Simulator()
        db = make_db(sim, isolation=isolation, next_key_locking=True)
        result = {}

        def scanner():
            session = db.session(isolation)
            first = yield from session.execute(
                "SELECT COUNT(*) FROM t WHERE k BETWEEN 20 AND 30")
            yield Timeout(5.0)
            second = yield from session.execute(
                "SELECT COUNT(*) FROM t WHERE k BETWEEN 20 AND 30")
            yield from session.commit()
            result["counts"] = (first.scalar(), second.scalar())

        def inserter():
            session = db.session()
            yield Timeout(1.0)
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (25, 0)")
            yield from session.commit()
            result["inserted_at"] = sim.now

        sim.spawn(scanner())
        sim.spawn(inserter())
        sim.run()
        outcomes[isolation] = result

    # RR: phantom prevented — both scans equal, inserter waited
    assert outcomes["RR"]["counts"][0] == outcomes["RR"]["counts"][1]
    assert outcomes["RR"]["inserted_at"] >= 5.0
    # RS / CS: the phantom appears; the inserter was never blocked
    for isolation in ("RS", "CS"):
        first, second = outcomes[isolation]["counts"]
        assert second == first + 1
        assert outcomes[isolation]["inserted_at"] == 1.0


def test_rs_holds_read_locks_cs_does_not():
    outcomes = {}
    for isolation in ("RS", "CS"):
        sim = Simulator()
        db = make_db(sim, isolation=isolation, next_key_locking=False)
        result = {}

        def reader():
            session = db.session(isolation)
            yield from session.execute("SELECT v FROM t WHERE k = 3")
            yield Timeout(5.0)
            yield from session.commit()

        def writer():
            session = db.session()
            yield Timeout(1.0)
            yield from session.execute("UPDATE t SET v = 9 WHERE k = 3")
            yield from session.commit()
            result["written_at"] = sim.now

        sim.spawn(reader())
        sim.spawn(writer())
        sim.run()
        outcomes[isolation] = result["written_at"]

    assert outcomes["RS"] == 5.0   # read lock held to commit
    assert outcomes["CS"] == 1.0   # read lock released at statement end


def test_sql_commit_acquires_no_locks_measured():
    """Figure 4, measured: between the last statement and the end of
    commit, the lock manager sees zero new acquire calls."""
    sim = Simulator()
    db = make_db(sim)

    def go():
        session = db.session()
        yield from session.execute("UPDATE t SET v = 1 WHERE k = 1")
        before = db.locks.metrics.acquires
        yield from session.commit()
        return db.locks.metrics.acquires - before

    assert sim.run_process(go()) == 0


def test_drop_index_removes_access_path():
    sim = Simulator()
    db = make_db(sim)
    assert db.explain("SELECT v FROM t WHERE k = 1")["access"] == \
        "index_scan"

    def drop():
        session = db.session()
        yield from session.execute("DROP INDEX t_k")

    sim.run_process(drop())
    assert db.explain("SELECT v FROM t WHERE k = 1")["access"] == \
        "table_scan"
    with pytest.raises(CatalogError):
        db.catalog.require_index("t_k")


def test_drop_unknown_index_raises():
    sim = Simulator()
    db = make_db(sim)

    def drop():
        session = db.session()
        with pytest.raises(CatalogError):
            yield from session.execute("DROP INDEX nope")
        return True

    assert sim.run_process(drop()) is True

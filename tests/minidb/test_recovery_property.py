"""Property-based crash-recovery testing.

The fundamental WAL contract, fuzzed: for ANY sequence of transactions
(some committed, some in-flight) and ANY crash point, restart recovery
yields exactly the committed state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Simulator
from repro.minidb import Database, DBConfig

# One transaction = list of ops applied to a key-value style table.
#   ("put", k, v) — INSERT or UPDATE key k
#   ("del", k)    — DELETE key k
op_strategy = st.one_of(
    st.tuples(st.just("put"), st.integers(0, 12), st.integers(0, 999)),
    st.tuples(st.just("del"), st.integers(0, 12)),
)
txn_strategy = st.tuples(
    st.lists(op_strategy, min_size=1, max_size=6),
    st.booleans(),                    # commit this transaction?
)


def apply_ops(db, session, ops, model):
    """Generator: run ops through SQL, mirroring them in ``model``."""
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            updated = yield from session.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (value, key))
            if updated == 0:
                yield from session.execute(
                    "INSERT INTO kv (k, v) VALUES (?, ?)", (key, value))
            model[key] = value
        else:
            _, key = op
            yield from session.execute("DELETE FROM kv WHERE k = ?",
                                       (key,))
            model.pop(key, None)


@settings(max_examples=40, deadline=None)
@given(st.lists(txn_strategy, min_size=1, max_size=6),
       st.booleans(),   # force the log tail before crashing?
       st.booleans())   # checkpoint mid-way?
def test_crash_recovers_exactly_committed_state(txns, force_tail,
                                                mid_checkpoint):
    sim = Simulator(seed=99)
    db = Database(sim, "fuzz", DBConfig(next_key_locking=False))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE kv (k INT, v INT)")
        yield from session.execute("CREATE UNIQUE INDEX kv_k ON kv (k)")
        yield from session.commit()

    sim.run_process(setup())

    committed_model: dict[int, int] = {}

    def work():
        for index, (ops, commit) in enumerate(txns):
            session = db.session()
            local = dict(committed_model)
            yield from apply_ops(db, session, ops, local)
            if commit:
                yield from session.commit()
                committed_model.clear()
                committed_model.update(local)
                if mid_checkpoint and index == len(txns) // 2:
                    db.checkpoint()
            # uncommitted transactions are simply abandoned at the crash
            # (their session vanishes with the process)
            else:
                # release locks so later txns in this linear script can
                # proceed — but WITHOUT undoing: we simulate "still open
                # at crash time" only for the final transaction; earlier
                # open ones must roll back to keep the script runnable.
                if index != len(txns) - 1:
                    yield from session.rollback()

    sim.run_process(work())
    if force_tail:
        db.wal.force()
    db.crash()
    db.restart()

    def read_back():
        session = db.session()
        result = yield from session.execute("SELECT k, v FROM kv")
        yield from session.commit()
        return dict(result.rows)

    assert sim.run_process(read_back()) == committed_model


@settings(max_examples=25, deadline=None)
@given(st.lists(txn_strategy, min_size=1, max_size=5))
def test_double_crash_is_idempotent(txns):
    """Crashing again immediately after recovery changes nothing."""
    sim = Simulator(seed=7)
    db = Database(sim, "fuzz2", DBConfig(next_key_locking=False))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE kv (k INT, v INT)")
        yield from session.execute("CREATE UNIQUE INDEX kv_k ON kv (k)")
        yield from session.commit()

    sim.run_process(setup())

    def work():
        for ops, commit in txns:
            session = db.session()
            yield from apply_ops(db, session, ops, {})
            if commit:
                yield from session.commit()
            else:
                yield from session.rollback()

    sim.run_process(work())
    db.wal.force()
    db.crash()
    db.restart()

    def snapshot():
        session = db.session()
        result = yield from session.execute("SELECT k, v FROM kv")
        yield from session.commit()
        return sorted(result.rows)

    first = sim.run_process(snapshot())
    db.crash()
    db.restart()
    second = sim.run_process(snapshot())
    assert first == second

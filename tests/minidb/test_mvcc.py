"""MVCC lineage chains and the SI isolation level (DESIGN.md §13).

Rows carry an append-only version tail stamped with commit LSNs; an SI
session reads the newest version at or below its begin snapshot WITHOUT
taking row or key locks, sees its own uncommitted writes, and loses
write-write races first-writer-wins. ``merge_versions`` folds committed
tails back into base records, never past the oldest live snapshot.
"""

import pytest

from repro.errors import TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig


def make_db(sim, **cfg):
    cfg.setdefault("next_key_locking", True)
    db = Database(sim, "mvcc", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v INT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(10):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, 0)", (k,))
        yield from session.commit()
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    return db


# ----------------------------------------------------------------- visibility

def test_si_snapshot_ignores_later_commits():
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def reader():
        session = db.session("SI")
        first = yield from session.execute("SELECT v FROM t WHERE k = 3")
        yield Timeout(5.0)
        second = yield from session.execute("SELECT v FROM t WHERE k = 3")
        yield from session.commit()
        # A NEW snapshot begun after the writer's commit sees the update.
        third = yield from session.execute("SELECT v FROM t WHERE k = 3")
        yield from session.commit()
        result["reads"] = (first.scalar(), second.scalar(), third.scalar())

    def writer():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute("UPDATE t SET v = 9 WHERE k = 3")
        yield from session.commit()

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert result["reads"] == (0, 0, 9)


def test_si_readers_never_block_writers_or_wait_on_them():
    """The tentpole property: an SI scan neither waits for a writer's X
    lock nor holds anything a writer must wait for."""
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def writer():
        session = db.session()
        yield from session.execute("UPDATE t SET v = 7 WHERE k = 5")
        yield Timeout(10.0)       # hold the X lock, uncommitted
        yield from session.commit()

    def reader():
        session = db.session("SI")
        yield Timeout(1.0)
        row = yield from session.execute("SELECT v FROM t WHERE k = 5")
        result["value"] = row.scalar()
        result["read_at"] = sim.now
        yield from session.commit()

    before = db.locks.metrics.waits
    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert result["value"] == 0        # pre-image, not the dirty write
    assert result["read_at"] == 1.0    # no lock wait
    assert db.locks.metrics.waits == before


def test_si_sees_own_writes():
    sim = Simulator()
    db = make_db(sim)

    def go():
        session = db.session("SI")
        yield from session.execute("UPDATE t SET v = 42 WHERE k = 1")
        row = yield from session.execute("SELECT v FROM t WHERE k = 1")
        yield from session.commit()
        return row.scalar()

    assert sim.run_process(go()) == 42


def test_si_delete_marker_visibility():
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def reader():
        session = db.session("SI")
        first = yield from session.execute(
            "SELECT COUNT(*) FROM t WHERE k = 4")
        yield Timeout(5.0)
        second = yield from session.execute(
            "SELECT COUNT(*) FROM t WHERE k = 4")
        yield from session.commit()
        third = yield from session.execute(
            "SELECT COUNT(*) FROM t WHERE k = 4")
        yield from session.commit()
        result["counts"] = (first.scalar(), second.scalar(), third.scalar())

    def deleter():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute("DELETE FROM t WHERE k = 4")
        yield from session.commit()

    sim.spawn(reader())
    sim.spawn(deleter())
    sim.run()
    assert result["counts"] == (1, 1, 0)


# ----------------------------------------------------------- write conflicts

def test_si_first_writer_wins():
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def first():
        session = db.session("SI")
        yield Timeout(1.0)
        yield from session.execute("UPDATE t SET v = 1 WHERE k = 2")
        yield from session.commit()

    def second():
        session = db.session("SI")
        # Snapshot taken (at t=0) before `first` commits (at t=1)...
        yield from session.execute("SELECT v FROM t WHERE k = 2")
        yield Timeout(2.0)
        # ...so this write lands on a row with a newer committed version.
        try:
            yield from session.execute("UPDATE t SET v = 2 WHERE k = 2")
            yield from session.commit()
            result["outcome"] = "committed"
        except TransactionAborted as exc:
            yield from session.rollback()
            result["outcome"] = exc.reason

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert result["outcome"] == "write-conflict"
    assert db.table_rows("t").count((2, 1)) == 1  # first writer's value


def test_write_conflict_is_retriable():
    """First-writer-wins aborts surface as TransactionAborted, which the
    DLFM retry loops already classify as retriable."""
    from repro.errors import RETRIABLE_FAULTS
    assert TransactionAborted in RETRIABLE_FAULTS


def test_si_for_update_takes_the_locking_path():
    """FOR UPDATE under SI is a current read: it waits for the writer
    and sees the committed result (the fence the DLFM probes rely on)."""
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def writer():
        session = db.session()
        yield from session.execute("UPDATE t SET v = 5 WHERE k = 6")
        yield Timeout(4.0)
        yield from session.commit()

    def prober():
        session = db.session("SI")
        yield Timeout(1.0)
        row = yield from session.execute(
            "SELECT v FROM t WHERE k = 6 FOR UPDATE")
        result["value"] = row.scalar()
        result["read_at"] = sim.now
        yield from session.commit()

    sim.spawn(writer())
    sim.spawn(prober())
    sim.run()
    assert result["value"] == 5       # waited for commit, saw the write
    assert result["read_at"] >= 4.0


# ------------------------------------------------------------------- merging

def test_merge_folds_chains_after_quiesce():
    """Chains accumulate only while a live snapshot pins them (commit
    folds eagerly otherwise); once the last snapshot closes, one merge
    pass collapses everything back into base records."""
    sim = Simulator()
    db = make_db(sim)
    seen = {}

    def pinner():
        session = db.session("SI")
        yield from session.execute("SELECT v FROM t WHERE k = 0")
        yield Timeout(10.0)             # hold the snapshot over the churn
        yield from session.commit()

    def churn():
        session = db.session()
        yield Timeout(1.0)
        for round_no in range(3):
            yield from session.execute(
                "UPDATE t SET v = ? WHERE k < 5", (round_no + 1,))
            yield from session.commit()
        yield from session.execute("DELETE FROM t WHERE k = 9")
        yield from session.commit()
        seen["chains_during"] = db.live_chains()

    sim.spawn(pinner())
    sim.spawn(churn())
    sim.run()
    assert seen["chains_during"] > 0
    assert db.live_chains() > 0
    assert db.metrics.versions_created > 0
    before = sorted(db.table_rows("t"))
    merged = db.merge_versions()
    assert merged > 0
    assert db.live_chains() == 0
    assert sorted(db.table_rows("t")) == before
    assert sorted(db.snapshot_table_rows("t")) == before
    assert db.metrics.versions_merged >= merged


def test_merge_never_folds_past_a_live_snapshot():
    sim = Simulator()
    db = make_db(sim)
    result = {}

    def reader():
        session = db.session("SI")
        first = yield from session.execute("SELECT v FROM t WHERE k = 0")
        yield Timeout(5.0)
        # A merge ran while we slept; our snapshot must be intact.
        second = yield from session.execute("SELECT v FROM t WHERE k = 0")
        yield from session.commit()
        result["reads"] = (first.scalar(), second.scalar())

    def writer():
        session = db.session()
        yield Timeout(1.0)
        yield from session.execute("UPDATE t SET v = 8 WHERE k = 0")
        yield from session.commit()
        result["merged_mid_read"] = db.merge_versions()
        result["chains_after"] = db.live_chains()

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    # The watermark (the reader's snapshot) pinned the chain: the old
    # version survived the merge and the reader never saw v=8.
    assert result["reads"] == (0, 0)
    assert result["chains_after"] > 0
    assert db.merge_versions() > 0    # quiesced: now it folds
    assert db.live_chains() == 0


# ------------------------------------------------------------------ recovery

def test_version_state_consistent_after_crash_and_restart():
    """Recovery mirrors the MVCC protocol over the log, then — since no
    snapshot survives a crash — merges every committed tail back into
    the base records. A post-restart snapshot must agree with the base
    rows and leave no live chains behind."""
    sim = Simulator()
    db = make_db(sim)

    def churn():
        session = db.session()
        yield from session.execute("UPDATE t SET v = 1 WHERE k = 7")
        yield from session.commit()
        yield from session.execute("UPDATE t SET v = 2 WHERE k = 7")
        yield from session.execute("DELETE FROM t WHERE k = 8")
        yield from session.commit()
        # A durable in-flight loser: recovery must undo it AND fold the
        # undo back out of the chains.
        yield from session.execute("UPDATE t SET v = 99 WHERE k = 0")
        db.wal.force()

    sim.run_process(churn())
    db.crash()
    db.restart()
    assert sorted(db.snapshot_table_rows("t")) == sorted(db.table_rows("t"))
    assert (7, 2) in db.table_rows("t")
    assert (0, 0) in db.table_rows("t")   # loser undone
    assert all(row[0] != 8 for row in db.table_rows("t"))
    assert db.live_chains() == 0


# --------------------------------------------------------------- differential

def _mixed_workload(isolation: str) -> dict:
    """Seeded reader/writer mix; writers own disjoint key ranges so the
    durable state is schedule-independent, while the shared hot rows
    give SI something to snapshot around and RR something to lock."""
    sim = Simulator(seed=7)
    db = make_db(sim, isolation=isolation)
    rng = sim.stream("mixed")

    def client(cid: int):
        session = db.session(isolation)
        for t in range(4):
            while True:
                try:
                    yield from session.execute(
                        "SELECT v FROM t WHERE k = ?",
                        (rng.randrange(10),))
                    yield from session.execute(
                        "UPDATE t SET v = ? WHERE k = ?",
                        (t + 1, cid))       # own key: no ww races
                    yield from session.execute(
                        "INSERT INTO t (k, v) VALUES (?, ?)",
                        (100 + cid * 10 + t, t))
                    yield from session.commit()
                    break
                except TransactionAborted:
                    yield from session.rollback()
                    yield Timeout(0.01)

    for cid in range(6):
        sim.spawn(client(cid), f"mix-{cid}")
    sim.run()
    db.merge_versions()
    return {name: sorted(db.table_rows(name))
            for name in db.catalog.tables}


def test_si_and_rr_reach_identical_durable_state():
    assert _mixed_workload("SI") == _mixed_workload("RR")


# ------------------------------------------------------------------ guards

def test_si_requires_mvcc():
    with pytest.raises(ValueError):
        DBConfig(isolation="SI", mvcc=False).validate()


def test_mvcc_off_keeps_heaps_chain_free():
    sim = Simulator()
    db = make_db(sim, mvcc=False)

    def churn():
        session = db.session()
        yield from session.execute("UPDATE t SET v = 3 WHERE k < 5")
        yield from session.commit()

    sim.run_process(churn())
    assert db.live_chains() == 0
    assert db.metrics.versions_created == 0

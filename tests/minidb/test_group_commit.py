"""WAL group commit (``DBConfig.group_commit_window``, MINCOMMIT-style).

Committers that reach their log force within the window share ONE
physical force: the first becomes the leader, sleeps the window, forces
the tail (covering everyone who appended meanwhile), and wakes the rest.
The ack-after-force invariant must survive crashes: a commit whose force
never happened is never acknowledged, and its work is gone at restart.

The committers UPDATE distinct pre-existing rows: concurrent INSERTs
would serialize on the shared candidate-rid X lock (held to commit under
strict 2PL) and never meet inside one window.
"""

import pytest

from repro.errors import CrashedError
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig
from repro.minidb.config import TimingModel


def make_db(sim, **cfg):
    # These tests are about the WAL, not locking: next-key locking would
    # chain committer k to committer k+1 via the index-probe neighbor
    # lock (E3) and keep them out of each other's window.
    cfg.setdefault("next_key_locking", False)
    db = Database(sim, "g", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(10):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (k, "init"))
        yield from session.commit()
        # E4 lesson: without statistics the UPDATE probes scan (and lock)
        # the whole table, serializing the committers before they ever
        # reach the log force.
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    return db


def all_rows(db):
    def go():
        session = db.session()
        result = yield from session.execute("SELECT k, v FROM t ORDER BY k")
        yield from session.commit()
        return result.rows
    return db.sim.run_process(go())


def committer(db, k, delay=0.0):
    if delay:
        yield Timeout(delay)
    session = db.session()
    yield from session.execute(
        "UPDATE t SET v = ? WHERE k = ?", (f"v{k}", k))
    yield from session.commit()


def test_window_validation():
    with pytest.raises(ValueError):
        DBConfig(group_commit_window=-0.1).validate()


def test_concurrent_committers_share_one_force():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02)
    forces_before = db.wal.metrics.forces
    groups_before = db.wal.metrics.group_commits

    def root():
        procs = [sim.spawn(committer(db, k), f"c{k}") for k in range(5)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    # One leader forces for everyone; four followers ride along.
    assert db.wal.metrics.forces - forces_before == 1
    assert db.wal.metrics.forces_saved == 4
    assert db.wal.metrics.group_commits - groups_before == 1
    assert all_rows(db) == [(k, f"v{k}") for k in range(5)] + [
        (k, "init") for k in range(5, 10)]


def test_stragglers_outside_the_window_start_a_new_group():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02)
    forces_before = db.wal.metrics.forces
    groups_before = db.wal.metrics.group_commits

    def root():
        procs = [sim.spawn(committer(db, 1), "c1"),
                 sim.spawn(committer(db, 2, delay=1.0), "c2")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert db.wal.metrics.forces - forces_before == 2
    assert db.wal.metrics.forces_saved == 0
    assert db.wal.metrics.group_commits - groups_before == 2


def test_group_commit_charges_one_force_latency():
    """Five grouped committers pay one window + one log-force latency,
    not five forces."""
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02,
                 timing=TimingModel(enabled=True, cpu_per_statement=0.0,
                                    page_io=0.0, lock_op=0.0, rpc=0.0,
                                    log_force=0.006))
    started = sim.now

    def root():
        procs = [sim.spawn(committer(db, k), f"c{k}") for k in range(5)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert sim.now - started == pytest.approx(0.02 + 0.006)


def test_crash_inside_window_never_acks_the_commit():
    """The durability half of the contract: a committer that crashed
    while waiting for the group force gets CrashedError — its commit was
    never acknowledged — and restart has no trace of its work."""
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.05)
    outcomes = {}

    def victim(k):
        try:
            yield from committer(db, k)
            outcomes[k] = "acked"
        except CrashedError:
            outcomes[k] = "crashed"

    def saboteur():
        # Mid-window: both committers are parked waiting for the force.
        yield Timeout(0.01)
        db.crash()

    def root():
        procs = [sim.spawn(victim(1), "v1"), sim.spawn(victim(2), "v2"),
                 sim.spawn(saboteur(), "boom")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert outcomes == {1: "crashed", 2: "crashed"}
    db.restart()
    assert all_rows(db) == [(k, "init") for k in range(10)]


def test_commit_after_restart_works_again():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.05)

    def doomed():
        try:
            yield from committer(db, 1)
        except CrashedError:
            pass

    def saboteur():
        yield Timeout(0.01)
        db.crash()

    def root():
        procs = [sim.spawn(doomed(), "d"), sim.spawn(saboteur(), "boom")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    db.restart()
    sim.run_process(committer(db, 2))
    rows = dict(all_rows(db))
    assert rows[1] == "init"     # the doomed commit left no trace
    assert rows[2] == "v2"       # the engine groups again after restart
    assert db.wal.metrics.group_commits >= 1


def test_zero_window_is_the_classic_path():
    """window=0 (the default) must behave exactly like the seed engine:
    every commit forces physically, nothing grouped, same data."""
    results = {}
    for window in (0.0, 0.02):
        sim = Simulator()
        db = make_db(sim, group_commit_window=window)

        def serial():
            for k in range(4):
                yield from committer(db, k)

        sim.run_process(serial())
        results[window] = (all_rows(db), db.wal.metrics.forces_saved)
    rows_zero, saved_zero = results[0.0]
    rows_win, _ = results[0.02]
    assert rows_zero == rows_win
    assert saved_zero == 0
    assert results[0.0][0][:4] == [(k, f"v{k}") for k in range(4)]

"""WAL group commit (``DBConfig.group_commit_window``, MINCOMMIT-style).

Committers that reach their log force within the window share ONE
physical force: the first becomes the leader, sleeps the window, forces
the tail (covering everyone who appended meanwhile), and wakes the rest.
The ack-after-force invariant must survive crashes: a commit whose force
never happened is never acknowledged, and its work is gone at restart.

The committers UPDATE distinct pre-existing rows: concurrent INSERTs
would serialize on the shared candidate-rid X lock (held to commit under
strict 2PL) and never meet inside one window.
"""

import pytest

from repro.errors import CrashedError
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig
from repro.minidb.config import TimingModel


def make_db(sim, **cfg):
    # These tests are about the WAL, not locking: next-key locking would
    # chain committer k to committer k+1 via the index-probe neighbor
    # lock (E3) and keep them out of each other's window.
    cfg.setdefault("next_key_locking", False)
    db = Database(sim, "g", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        for k in range(10):
            yield from session.execute(
                "INSERT INTO t (k, v) VALUES (?, ?)", (k, "init"))
        yield from session.commit()
        # E4 lesson: without statistics the UPDATE probes scan (and lock)
        # the whole table, serializing the committers before they ever
        # reach the log force.
        db.set_table_stats("t", card=1_000_000, colcard={"k": 1_000_000})

    sim.run_process(setup())
    return db


def all_rows(db):
    def go():
        session = db.session()
        result = yield from session.execute("SELECT k, v FROM t ORDER BY k")
        yield from session.commit()
        return result.rows
    return db.sim.run_process(go())


def committer(db, k, delay=0.0):
    if delay:
        yield Timeout(delay)
    session = db.session()
    yield from session.execute(
        "UPDATE t SET v = ? WHERE k = ?", (f"v{k}", k))
    yield from session.commit()


def test_window_validation():
    with pytest.raises(ValueError):
        DBConfig(group_commit_window=-0.1).validate()


def test_concurrent_committers_share_one_force():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02)
    forces_before = db.wal.metrics.forces
    groups_before = db.wal.metrics.group_commits

    def root():
        procs = [sim.spawn(committer(db, k), f"c{k}") for k in range(5)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    # One leader forces for everyone; four followers ride along.
    assert db.wal.metrics.forces - forces_before == 1
    assert db.wal.metrics.forces_saved == 4
    assert db.wal.metrics.group_commits - groups_before == 1
    assert all_rows(db) == [(k, f"v{k}") for k in range(5)] + [
        (k, "init") for k in range(5, 10)]


def test_stragglers_outside_the_window_start_a_new_group():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02)
    forces_before = db.wal.metrics.forces
    groups_before = db.wal.metrics.group_commits

    def root():
        procs = [sim.spawn(committer(db, 1), "c1"),
                 sim.spawn(committer(db, 2, delay=1.0), "c2")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert db.wal.metrics.forces - forces_before == 2
    assert db.wal.metrics.forces_saved == 0
    assert db.wal.metrics.group_commits - groups_before == 2


def test_group_commit_charges_one_force_latency():
    """Five grouped committers pay one window + one log-force latency,
    not five forces."""
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.02,
                 timing=TimingModel(enabled=True, cpu_per_statement=0.0,
                                    page_io=0.0, lock_op=0.0, rpc=0.0,
                                    log_force=0.006))
    started = sim.now

    def root():
        procs = [sim.spawn(committer(db, k), f"c{k}") for k in range(5)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert sim.now - started == pytest.approx(0.02 + 0.006)


def test_crash_inside_window_never_acks_the_commit():
    """The durability half of the contract: a committer that crashed
    while waiting for the group force gets CrashedError — its commit was
    never acknowledged — and restart has no trace of its work."""
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.05)
    outcomes = {}

    def victim(k):
        try:
            yield from committer(db, k)
            outcomes[k] = "acked"
        except CrashedError:
            outcomes[k] = "crashed"

    def saboteur():
        # Mid-window: both committers are parked waiting for the force.
        yield Timeout(0.01)
        db.crash()

    def root():
        procs = [sim.spawn(victim(1), "v1"), sim.spawn(victim(2), "v2"),
                 sim.spawn(saboteur(), "boom")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert outcomes == {1: "crashed", 2: "crashed"}
    db.restart()
    assert all_rows(db) == [(k, "init") for k in range(10)]


def test_commit_after_restart_works_again():
    sim = Simulator()
    db = make_db(sim, group_commit_window=0.05)

    def doomed():
        try:
            yield from committer(db, 1)
        except CrashedError:
            pass

    def saboteur():
        yield Timeout(0.01)
        db.crash()

    def root():
        procs = [sim.spawn(doomed(), "d"), sim.spawn(saboteur(), "boom")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    db.restart()
    sim.run_process(committer(db, 2))
    rows = dict(all_rows(db))
    assert rows[1] == "init"     # the doomed commit left no trace
    assert rows[2] == "v2"       # the engine groups again after restart
    assert db.wal.metrics.group_commits >= 1


def test_zero_window_is_the_classic_path():
    """window=0 (the default) must behave exactly like the seed engine:
    every commit forces physically, nothing grouped, same data."""
    results = {}
    for window in (0.0, 0.02):
        sim = Simulator()
        db = make_db(sim, group_commit_window=window)

        def serial():
            for k in range(4):
                yield from committer(db, k)

        sim.run_process(serial())
        results[window] = (all_rows(db), db.wal.metrics.forces_saved)
    rows_zero, saved_zero = results[0.0]
    rows_win, _ = results[0.02]
    assert rows_zero == rows_win
    assert saved_zero == 0
    assert results[0.0][0][:4] == [(k, f"v{k}") for k in range(4)]


# ----------------------------------------------------------------- auto window

def test_auto_window_validation():
    DBConfig(group_commit_window="auto").validate()
    with pytest.raises(ValueError):
        DBConfig(group_commit_window="adaptive").validate()
    with pytest.raises(ValueError):
        DBConfig(group_commit_window="auto",
                 group_commit_min_window=0.1,
                 group_commit_max_window=0.05).validate()
    with pytest.raises(ValueError):
        DBConfig(group_commit_window="auto",
                 group_commit_ewma_alpha=0.0).validate()
    with pytest.raises(ValueError):
        DBConfig(group_commit_window="auto",
                 group_commit_burst_factor=0.0).validate()


def prime_ewma(db, keys=(0, 1)):
    """Two back-to-back commits (virtual gap ≈ 0) pull the commit
    inter-arrival EWMA to ~0, so the next leader opens a batching
    window of ``group_commit_min_window``."""
    for k in keys:
        db.sim.run_process(committer(db, k))


def test_auto_sparse_arrivals_force_immediately():
    """Commits spaced beyond the max window must not pay any window at
    all — the latency-tax half of the E1 trade-off."""
    sim = Simulator()
    db = make_db(sim, group_commit_window="auto")

    def serial():
        for k in range(4):
            yield from committer(db, k, delay=1.0)

    sim.run_process(serial())
    metrics = db.wal.metrics
    assert metrics.auto_immediate >= 3   # every post-EWMA commit forced now
    assert metrics.auto_batched == 0
    assert metrics.forces_saved == 0
    assert metrics.group_commits == 0
    # No window was ever opened: total time is just the four 1 s delays.
    assert sim.now == pytest.approx(4.0)
    assert set(db.wal.auto_windows) == {0.0}


def test_auto_burst_batches_within_bounds():
    """Dense arrivals: the EWMA collapses, leaders open windows inside
    [min_window, max_window], and followers share the force."""
    sim = Simulator()
    db = make_db(sim, group_commit_window="auto")
    prime_ewma(db)
    forces_before = db.wal.metrics.forces

    def root():
        procs = [sim.spawn(committer(db, k), f"c{k}") for k in range(2, 8)]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    metrics = db.wal.metrics
    assert metrics.auto_batched >= 1
    assert metrics.forces_saved >= 5
    assert metrics.forces - forces_before == 1   # one force for the burst
    cfg = db.config
    opened = [w for w in db.wal.auto_windows if w > 0]
    assert opened
    assert all(cfg.group_commit_min_window <= w
               <= cfg.group_commit_max_window for w in opened)
    assert all_rows(db)[2:8] == [(k, f"v{k}") for k in range(2, 8)]


def test_auto_crash_inside_window_never_acks():
    """The never-ack contract holds in auto mode: a crash while the
    leader sleeps its self-chosen window fails every member, and restart
    has no trace of their work."""
    sim = Simulator()
    db = make_db(sim, group_commit_window="auto")
    prime_ewma(db)
    outcomes = {}

    def victim(k):
        try:
            yield from committer(db, k)
            outcomes[k] = "acked"
        except CrashedError:
            outcomes[k] = "crashed"

    def saboteur():
        # Inside the min_window (0.002) the leader is sleeping out.
        yield Timeout(0.001)
        db.crash()

    def root():
        procs = [sim.spawn(victim(2), "v2"), sim.spawn(victim(3), "v3"),
                 sim.spawn(saboteur(), "boom")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert outcomes == {2: "crashed", 3: "crashed"}
    db.restart()
    rows = dict(all_rows(db))
    assert rows[2] == "init" and rows[3] == "init"
    assert rows[0] == "v0" and rows[1] == "v1"   # the acked ones survive


def test_auto_leader_aborted_inside_window_hands_off():
    """The leader re-check: a transaction aborted while sleeping its
    window must NOT force (its commit is dead) — it wakes the followers
    so one of them takes over leadership, and only their work commits."""
    from repro.errors import TransactionAborted
    sim = Simulator()
    db = make_db(sim, group_commit_window="auto")
    prime_ewma(db)
    outcomes = {}
    txns = {}

    def leader():
        session = db.session()
        yield from session.execute(
            "UPDATE t SET v = ? WHERE k = ?", ("doomed", 2))
        txns["leader"] = session.txn
        try:
            yield from session.commit()
            outcomes["leader"] = "acked"
        except TransactionAborted:
            outcomes["leader"] = "aborted"
            yield from db.rollback(txns["leader"])

    def follower():
        yield Timeout(0.0005)        # join the leader's open window
        yield from committer(db, 3)
        outcomes["follower"] = "acked"

    def saboteur():
        yield Timeout(0.001)         # mid-window: mark the leader dead
        txns["leader"].rollback_only = True
        txns["leader"].abort_reason = "victim"

    def root():
        procs = [sim.spawn(leader(), "L"), sim.spawn(follower(), "F"),
                 sim.spawn(saboteur(), "S")]
        for proc in procs:
            yield from proc.join()

    sim.run_process(root())
    assert outcomes == {"leader": "aborted", "follower": "acked"}
    rows = dict(all_rows(db))
    assert rows[2] == "init"         # the dead leader's work is gone
    assert rows[3] == "v3"           # the follower's commit survived


def test_auto_matches_fixed_data_outcome():
    """auto and a fixed window must produce identical data for the same
    serial schedule — the tuning only moves forces around."""
    results = {}
    for window in ("auto", 0.02):
        sim = Simulator()
        db = make_db(sim, group_commit_window=window)

        def serial():
            for k in range(6):
                yield from committer(db, k)

        sim.run_process(serial())
        results[window] = all_rows(db)
    assert results["auto"] == results[0.02]

"""Engine-level XA support: PREPARE records, indoubt restart, locks."""

import pytest

from repro.errors import DatabaseError, TransactionAborted
from repro.kernel import Simulator, Timeout
from repro.minidb import Database, DBConfig
from repro.minidb.txn import TxnState


def make_db(sim, **cfg):
    cfg.setdefault("next_key_locking", False)
    db = Database(sim, "xa", DBConfig(**cfg))

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (k INT, v TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_k ON t (k)")
        yield from session.commit()

    sim.run_process(setup())
    return db


def test_prepare_keeps_locks_and_state():
    sim = Simulator()
    db = make_db(sim)

    def go():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        txn = session.txn
        yield from db.prepare(txn)
        assert txn.state is TxnState.PREPARED
        assert txn.lock_count > 0
        assert db.indoubt_transactions() == [txn]
        yield from db.commit(txn)
        assert db.indoubt_transactions() == []

    sim.run_process(go())


def test_prepared_rows_invisible_to_others_until_decision():
    sim = Simulator()
    db = make_db(sim, lock_timeout=3.0)

    def owner():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        yield Timeout(10)
        yield from db.commit(session.txn)

    def reader():
        session = db.session()
        yield Timeout(1)
        with pytest.raises(TransactionAborted):
            yield from session.execute("SELECT * FROM t WHERE k = 1")
        yield Timeout(10)
        result = yield from session.execute("SELECT v FROM t WHERE k = 1")
        yield from session.commit()
        return result.scalar()

    sim.spawn(owner())
    proc = sim.spawn(reader())
    sim.run()
    assert proc.result == "a"


def test_prepared_txn_survives_crash_and_can_commit():
    sim = Simulator()
    db = make_db(sim)

    def phase1():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        return session.txn.id

    txn_id = sim.run_process(phase1())
    db.crash()
    summary = db.restart()
    assert summary["prepared"] == [txn_id]
    txn = db.find_prepared(txn_id)

    def decide():
        yield from db.commit(txn)
        session = db.session()
        result = yield from session.execute("SELECT v FROM t WHERE k = 1")
        yield from session.commit()
        return result.scalar()

    assert sim.run_process(decide()) == "a"
    assert db.indoubt_transactions() == []


def test_resurrected_indoubt_is_stamped_with_recovery_time():
    """Regression: resurrection used to stamp start time 0.0, making
    age-based policies (oldest-transaction reporting, lock-wait
    victim choice) see an infinitely old transaction."""
    sim = Simulator()
    db = make_db(sim)

    def phase1():
        yield Timeout(42.0)  # recovery happens well past t=0
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        return session.txn.id

    txn_id = sim.run_process(phase1())
    db.crash()
    db.restart()
    txn = db.find_prepared(txn_id)
    assert txn.start_time == sim.now
    assert txn.start_time >= 42.0


def test_prepared_txn_survives_crash_and_can_roll_back():
    sim = Simulator()
    db = make_db(sim)

    def phase1():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        return session.txn.id

    txn_id = sim.run_process(phase1())
    db.crash()
    db.restart()
    txn = db.find_prepared(txn_id)

    def decide():
        yield from db.rollback(txn)
        session = db.session()
        result = yield from session.execute("SELECT COUNT(*) FROM t")
        yield from session.commit()
        return result.scalar()

    assert sim.run_process(decide()) == 0


def test_recovered_indoubt_locks_block_writers():
    sim = Simulator()
    db = make_db(sim, lock_timeout=2.0)

    def phase1():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        return session.txn.id

    txn_id = sim.run_process(phase1())
    db.crash()
    db.restart()

    def intruder():
        session = db.session()
        with pytest.raises(TransactionAborted):
            yield from session.execute(
                "UPDATE t SET v = 'stolen' WHERE k = 1")
        return True

    assert sim.run_process(intruder()) is True

    def finish():
        yield from db.commit(db.find_prepared(txn_id))

    sim.run_process(finish())


def test_double_crash_keeps_indoubt_txn():
    sim = Simulator()
    db = make_db(sim)

    def phase1():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        yield from db.prepare(session.txn)
        return session.txn.id

    txn_id = sim.run_process(phase1())
    db.crash()
    db.restart()
    db.crash()
    summary = db.restart()
    assert summary["prepared"] == [txn_id]
    assert db.find_prepared(txn_id) is not None


def test_prepare_of_rollback_only_txn_fails():
    sim = Simulator()
    db = make_db(sim)

    def go():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        session.txn.mark_rollback_only("test")
        with pytest.raises(TransactionAborted):
            yield from db.prepare(session.txn)
        return True

    assert sim.run_process(go()) is True


def test_find_prepared_unknown_raises():
    sim = Simulator()
    db = make_db(sim)
    with pytest.raises(DatabaseError):
        db.find_prepared(12345)


def test_prepared_txn_pins_log_floor():
    """An indoubt transaction must keep its undo records reachable."""
    sim = Simulator()
    db = make_db(sim, wal_capacity=200)

    def go():
        session = db.session()
        yield from session.execute("INSERT INTO t (k, v) VALUES (0, 'p')")
        yield from db.prepare(session.txn)
        floor = db.txns.active_floor()
        assert floor is not None
        other = db.session()
        for k in range(1, 50):
            yield from other.execute(
                "INSERT INTO t (k, v) VALUES (?, 'x')", (k,))
            yield from other.commit()
        # the floor has not moved past the prepared txn's first record
        assert db.txns.active_floor() == floor
        yield from db.commit(session.txn)

    sim.run_process(go())

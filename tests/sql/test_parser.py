"""Parser tests over the SQL subset."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.parser import parse


def test_select_star():
    stmt = parse("SELECT * FROM files")
    assert isinstance(stmt, ast.Select)
    assert stmt.items is None
    assert stmt.table == ast.TableRef("files", None)


def test_select_columns_with_alias():
    stmt = parse("SELECT name, size AS s FROM files")
    assert [i.alias for i in stmt.items] == [None, "s"]


def test_select_where_comparison():
    stmt = parse("SELECT * FROM f WHERE id = 5")
    assert stmt.where == ast.Comparison("=", ast.ColumnRef("id"),
                                        ast.Literal(5))


def test_where_precedence_or_binds_weaker_than_and():
    stmt = parse("SELECT * FROM f WHERE a = 1 AND b = 2 OR c = 3")
    assert isinstance(stmt.where, ast.Or)
    assert isinstance(stmt.where.items[0], ast.And)


def test_parenthesized_predicate():
    stmt = parse("SELECT * FROM f WHERE a = 1 AND (b = 2 OR c = 3)")
    assert isinstance(stmt.where, ast.And)
    assert isinstance(stmt.where.items[1], ast.Or)


def test_not_between_in_isnull():
    stmt = parse("SELECT * FROM f WHERE NOT a IN (1, 2) AND b BETWEEN 1 AND 9"
                 " AND c IS NOT NULL")
    conj = stmt.where.items
    assert isinstance(conj[0], ast.Not)
    assert isinstance(conj[0].item, ast.InList)
    assert isinstance(conj[1], ast.Between)
    assert conj[2] == ast.IsNull(ast.ColumnRef("c"), negated=True)


def test_params_numbered_in_order():
    stmt = parse("SELECT * FROM f WHERE a = ? AND b = ?")
    assert stmt.where.items[0].right == ast.Param(0)
    assert stmt.where.items[1].right == ast.Param(1)


def test_qualified_columns_and_join():
    stmt = parse("SELECT f.name FROM f JOIN g ON f.id = g.fid WHERE g.x = 1")
    assert stmt.join.table.name == "g"
    assert stmt.join.on == ast.Comparison(
        "=", ast.ColumnRef("id", "f"), ast.ColumnRef("fid", "g"))


def test_table_alias():
    stmt = parse("SELECT t.name FROM files t")
    assert stmt.table == ast.TableRef("files", "t")


def test_order_by_asc_desc_and_limit():
    stmt = parse("SELECT * FROM f ORDER BY a DESC, b ASC LIMIT 10")
    assert stmt.order_by[0].descending is True
    assert stmt.order_by[1].descending is False
    assert stmt.limit == ast.Literal(10)


def test_limit_param():
    stmt = parse("SELECT * FROM f LIMIT ?")
    assert stmt.limit == ast.Param(0)


def test_for_update():
    stmt = parse("SELECT * FROM f WHERE id = 1 FOR UPDATE")
    assert stmt.for_update is True


def test_except():
    stmt = parse("SELECT a FROM f EXCEPT SELECT a FROM g")
    assert stmt.except_select is not None
    assert stmt.except_select.table.name == "g"


def test_aggregates():
    stmt = parse("SELECT COUNT(*), MAX(id), MIN(id), SUM(size) FROM f")
    names = [item.expr.name for item in stmt.items]
    assert names == ["COUNT", "MAX", "MIN", "SUM"]
    assert stmt.items[0].expr.arg is None


def test_insert():
    stmt = parse("INSERT INTO f (a, b) VALUES (1, 'x')")
    assert stmt == ast.Insert("f", ("a", "b"),
                              (ast.Literal(1), ast.Literal("x")))


def test_insert_arity_mismatch_raises():
    with pytest.raises(SQLSyntaxError):
        parse("INSERT INTO f (a, b) VALUES (1)")


def test_insert_multi_row():
    stmt = parse("INSERT INTO f (a, b) VALUES (1, 'x'), (2, 'y'), (?, ?)")
    assert stmt.values == (ast.Literal(1), ast.Literal("x"))
    assert stmt.more_rows == (
        (ast.Literal(2), ast.Literal("y")),
        (ast.Param(0), ast.Param(1)),
    )
    assert len(stmt.rows) == 3


def test_insert_multi_row_arity_mismatch_raises():
    with pytest.raises(SQLSyntaxError):
        parse("INSERT INTO f (a, b) VALUES (1, 'x'), (2)")


def test_update_with_arithmetic():
    stmt = parse("UPDATE f SET n = n + 1 WHERE id = ?")
    (col, expr), = stmt.assignments
    assert col == "n"
    assert expr == ast.Arithmetic("+", ast.ColumnRef("n"), ast.Literal(1))


def test_delete():
    stmt = parse("DELETE FROM f WHERE state = 'deleted'")
    assert isinstance(stmt, ast.Delete)


def test_create_table_types_normalized():
    stmt = parse("CREATE TABLE f (a INTEGER, b VARCHAR, c REAL, d BOOLEAN)")
    assert stmt.columns == (("a", "INT"), ("b", "TEXT"), ("c", "FLOAT"),
                            ("d", "BOOL"))


def test_create_unique_index():
    stmt = parse("CREATE UNIQUE INDEX i ON f (a, b)")
    assert stmt == ast.CreateIndex("i", "f", ("a", "b"), True)


def test_drop_table():
    assert parse("DROP TABLE f") == ast.DropTable("f")


def test_negative_literal():
    stmt = parse("SELECT * FROM f WHERE a = -5")
    assert stmt.where.right == ast.Literal(-5)


def test_null_true_false_literals():
    stmt = parse("INSERT INTO f (a, b, c) VALUES (NULL, TRUE, FALSE)")
    assert stmt.values == (ast.Literal(None), ast.Literal(True),
                           ast.Literal(False))


def test_trailing_garbage_raises():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT * FROM f garbage extra")


def test_missing_from_raises():
    with pytest.raises(SQLSyntaxError):
        parse("SELECT *")


def test_error_message_mentions_position():
    with pytest.raises(SQLSyntaxError, match="position"):
        parse("SELECT FROM")

"""End-to-end SQL execution through sessions (single client)."""

import pytest

from repro.errors import (DuplicateKeyError, SQLTypeError, TransactionAborted)
from repro.minidb import Database, DBConfig

from tests.conftest import setup_files_table


def run1(db, gen):
    return db.sim.run_process(gen)


@pytest.fixture
def loaded(sim):
    db = Database(sim, "t", DBConfig())

    def setup():
        yield from setup_files_table(db, rows=50)

    sim.run_process(setup())
    return db


def q(db, sql, params=()):
    def go():
        session = db.session()
        result = yield from session.execute(sql, params)
        yield from session.commit()
        return result
    return db.sim.run_process(go())


def test_multi_row_insert_inserts_every_row(loaded):
    count = q(loaded,
              "INSERT INTO files (id, name, size, state) VALUES "
              "(100, 'extra-a', 1, 'free'), (101, 'extra-b', 2, 'free'), "
              "(?, ?, ?, ?)",
              (102, "extra-c", 3, "free"))
    assert count == 3  # param indices are absolute across the rows
    result = q(loaded, "SELECT id, name FROM files WHERE id BETWEEN 100 AND 110")
    assert sorted(result.rows) == [(100, "extra-a"), (101, "extra-b"),
                                   (102, "extra-c")]


def test_multi_row_insert_duplicate_key_fails_whole_statement(loaded):
    with pytest.raises(DuplicateKeyError):
        q(loaded,
          "INSERT INTO files (id, name, size, state) VALUES "
          "(200, 'fresh-name', 1, 'free'), (201, 'file-00003', 2, 'free')")
    # The statement failed as a unit: row 200 must not survive.
    result = q(loaded, "SELECT id FROM files WHERE id = 200")
    assert result.rows == []


def test_select_star_returns_all_columns(loaded):
    result = q(loaded, "SELECT * FROM files WHERE id = 7")
    assert result.columns == ["id", "name", "size", "state"]
    assert result.rows == [(7, "file-00007", 70, "free")]


def test_select_projection_order(loaded):
    result = q(loaded, "SELECT size, id FROM files WHERE id = 3")
    assert result.rows == [(30, 3)]


def test_where_with_params(loaded):
    result = q(loaded, "SELECT id FROM files WHERE name = ?", ("file-00010",))
    assert result.scalar() == 10


def test_missing_param_raises(loaded):
    with pytest.raises(SQLTypeError):
        q(loaded, "SELECT id FROM files WHERE name = ?")


def test_in_and_between(loaded):
    result = q(loaded,
               "SELECT id FROM files WHERE id IN (1, 2, 99) OR id BETWEEN 47 AND 48")
    assert sorted(r[0] for r in result) == [1, 2, 47, 48]


def test_is_null_matching(loaded):
    def go():
        session = loaded.session()
        yield from session.execute(
            "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
            (999, "nullsize", None, "free"))
        result = yield from session.execute(
            "SELECT id FROM files WHERE size IS NULL")
        yield from session.commit()
        return result
    result = loaded.sim.run_process(go())
    assert result.rows == [(999,)]


def test_null_comparison_is_unknown_not_match(loaded):
    def go():
        session = loaded.session()
        yield from session.execute(
            "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
            (999, "nullsize", None, "free"))
        result = yield from session.execute(
            "SELECT COUNT(*) FROM files WHERE size < 100000")
        yield from session.commit()
        return result
    result = loaded.sim.run_process(go())
    assert result.scalar() == 50  # NULL row excluded


def test_order_by_desc_and_limit(loaded):
    result = q(loaded, "SELECT id FROM files ORDER BY id DESC LIMIT 3")
    assert [r[0] for r in result] == [49, 48, 47]


def test_order_by_text_column(loaded):
    result = q(loaded, "SELECT name FROM files ORDER BY name LIMIT 2")
    assert [r[0] for r in result] == ["file-00000", "file-00001"]


def test_aggregates(loaded):
    result = q(loaded, "SELECT COUNT(*), MAX(id), MIN(id), SUM(id) FROM files")
    assert result.rows == [(50, 49, 0, sum(range(50)))]


def test_aggregate_on_empty_set(loaded):
    result = q(loaded, "SELECT COUNT(*), MAX(id) FROM files WHERE id > 1000")
    assert result.rows == [(0, None)]


def test_update_rowcount_and_effect(loaded):
    count = q(loaded, "UPDATE files SET state = 'hot' WHERE id < 5")
    assert count == 5
    result = q(loaded, "SELECT COUNT(*) FROM files WHERE state = 'hot'")
    assert result.scalar() == 5


def test_delete_rowcount(loaded):
    count = q(loaded, "DELETE FROM files WHERE id >= 45")
    assert count == 5
    assert q(loaded, "SELECT COUNT(*) FROM files").scalar() == 45


def test_unique_index_violation_is_statement_error_not_txn_abort(loaded):
    def go():
        session = loaded.session()
        yield from session.execute(
            "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
            (100, "newfile", 0, "free"))
        with pytest.raises(DuplicateKeyError):
            yield from session.execute(
                "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
                (101, "file-00001", 0, "free"))  # duplicate name
        # transaction still usable; first insert survives
        result = yield from session.execute(
            "SELECT COUNT(*) FROM files WHERE name = 'newfile'")
        yield from session.commit()
        return result.scalar()
    assert loaded.sim.run_process(go()) == 1


def test_statement_rollback_undoes_partial_update(loaded):
    def go():
        session = loaded.session()
        # size = size + 1 works for rows until it hits the TEXT misuse row
        yield from session.execute(
            "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
            (777, "texty", 5, "free"))
        with pytest.raises(SQLTypeError):
            yield from session.execute(
                "UPDATE files SET size = name WHERE id < 10")
        result = yield from session.execute(
            "SELECT COUNT(*) FROM files WHERE size IS NULL")
        yield from session.commit()
        return result.scalar()
    assert loaded.sim.run_process(go()) == 0


def test_rollback_undoes_everything(loaded):
    def go():
        session = loaded.session()
        yield from session.execute("DELETE FROM files WHERE id < 25")
        yield from session.rollback()
        result = yield from session.execute("SELECT COUNT(*) FROM files")
        yield from session.commit()
        return result.scalar()
    assert loaded.sim.run_process(go()) == 50


def test_savepoint_partial_rollback(loaded):
    def go():
        session = loaded.session()
        yield from session.execute("DELETE FROM files WHERE id = 0")
        session.savepoint("sp1")
        yield from session.execute("DELETE FROM files WHERE id = 1")
        session.rollback_to_savepoint("sp1")
        result = yield from session.execute("SELECT COUNT(*) FROM files")
        yield from session.commit()
        return result.scalar()
    assert loaded.sim.run_process(go()) == 49  # only id=0 gone


def test_join_with_index_lookup(loaded):
    def go():
        session = loaded.session()
        yield from session.execute("CREATE TABLE tags (fid INT, tag TEXT)")
        yield from session.execute(
            "INSERT INTO tags (fid, tag) VALUES (1, 'video')")
        yield from session.execute(
            "INSERT INTO tags (fid, tag) VALUES (2, 'audio')")
        result = yield from session.execute(
            "SELECT f.name, t.tag FROM files f JOIN tags t ON f.id = t.fid "
            "WHERE t.tag = 'video'")
        yield from session.commit()
        return result
    result = loaded.sim.run_process(go())
    assert result.rows == [("file-00001", "video")]


def test_except_difference(loaded):
    def go():
        session = loaded.session()
        yield from session.execute("CREATE TABLE expected (name TEXT)")
        for i in range(3):
            yield from session.execute(
                "INSERT INTO expected (name) VALUES (?)", (f"file-{i:05d}",))
        result = yield from session.execute(
            "SELECT name FROM expected EXCEPT SELECT name FROM files")
        yield from session.commit()
        return result
    result = loaded.sim.run_process(go())
    assert result.rows == []  # every expected name exists in files


def test_except_finds_missing(loaded):
    def go():
        session = loaded.session()
        yield from session.execute("CREATE TABLE expected (name TEXT)")
        yield from session.execute(
            "INSERT INTO expected (name) VALUES ('ghost')")
        result = yield from session.execute(
            "SELECT name FROM expected EXCEPT SELECT name FROM files")
        yield from session.commit()
        return result
    assert loaded.sim.run_process(go()).rows == [("ghost",)]


def test_query_one(loaded):
    def go():
        session = loaded.session()
        row = yield from session.query_one(
            "SELECT id FROM files WHERE name = ?", ("file-00002",))
        missing = yield from session.query_one(
            "SELECT id FROM files WHERE name = ?", ("nope",))
        yield from session.commit()
        return row, missing
    assert loaded.sim.run_process(go()) == ((2,), None)


def test_typecheck_on_insert(loaded):
    with pytest.raises(SQLTypeError):
        q(loaded, "INSERT INTO files (id, name, size, state) "
                  "VALUES ('notint', 'x', 0, 'free')")


def test_select_after_txn_abort_raises(loaded):
    """Once aborted, the transaction id must not be reused for work."""
    def go():
        session = loaded.session()
        txn = session._require_txn()
        txn.mark_rollback_only("test")
        with pytest.raises(TransactionAborted):
            yield from session.execute("SELECT COUNT(*) FROM files")
        # session recovers with a fresh transaction afterwards
        result = yield from session.execute("SELECT COUNT(*) FROM files")
        yield from session.commit()
        return result.scalar()
    assert loaded.sim.run_process(go()) == 50

"""Optimizer behaviour — the statistics gotchas of lesson §4 / E4."""

import pytest

from repro.minidb import Database, DBConfig


@pytest.fixture
def db(sim):
    db = Database(sim, "t", DBConfig())

    def setup():
        session = db.session()
        yield from session.execute(
            "CREATE TABLE f (id INT, name TEXT, grp INT, state TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX f_name ON f (name)")
        yield from session.execute("CREATE INDEX f_grp ON f (grp, state)")
        for i in range(200):
            yield from session.execute(
                "INSERT INTO f (id, name, grp, state) VALUES (?, ?, ?, ?)",
                (i, f"n{i}", i % 10, f"s{i % 40}"))
        yield from session.commit()

    sim.run_process(setup())
    return db


def test_default_stats_prefer_table_scan(db):
    """Fresh table: card=0 in the catalog → table scan wins (the gotcha)."""
    info = db.explain("SELECT * FROM f WHERE name = ?")
    assert info["access"] == "table_scan"


def test_runstats_flips_to_index_scan(db):
    db.runstats("f")
    info = db.explain("SELECT * FROM f WHERE name = ?")
    assert info == {"kind": "select", "access": "index_scan",
                    "index": "f_name", "cost": info["cost"]}


def test_hand_crafted_stats_force_index_scan(db):
    """The paper's utility: poke catalog stats before binding plans."""
    db.set_table_stats("f", card=1_000_000, npages=40_000,
                       colcard={"name": 1_000_000, "grp": 10})
    info = db.explain("SELECT * FROM f WHERE name = ?")
    assert info["access"] == "index_scan"
    assert db.catalog.stats_for("f").manual is True


def test_user_runstats_overwrites_manual_flag(db):
    db.set_table_stats("f", card=1_000_000)
    db.runstats("f")
    assert db.catalog.stats_for("f").manual is False


def test_stats_change_invalidates_bound_plan(db):
    before = db.explain("SELECT * FROM f WHERE name = ?")
    assert before["access"] == "table_scan"
    binds_before = db.metrics.plan_binds
    db.set_table_stats("f", card=1_000_000, colcard={"name": 1_000_000})
    after = db.explain("SELECT * FROM f WHERE name = ?")
    assert after["access"] == "index_scan"
    assert db.metrics.plan_invalidations >= 1
    assert db.metrics.plan_binds > binds_before


def test_plan_is_cached_until_invalidation(db):
    db.explain("SELECT * FROM f WHERE name = ?")
    binds = db.metrics.plan_binds
    db.explain("SELECT * FROM f WHERE name = ?")
    assert db.metrics.plan_binds == binds


def test_composite_index_prefix_match(db):
    db.runstats("f")
    info = db.explain("SELECT * FROM f WHERE grp = ? AND state = ?")
    assert info["access"] == "index_scan"
    assert info["index"] == "f_grp"


def test_range_predicate_uses_index(db):
    db.runstats("f")
    # grp equality + state range rides the composite index
    info = db.explain("SELECT * FROM f WHERE grp = 3 AND state > 'a'")
    assert info["access"] == "index_scan"


def test_non_leading_column_cannot_use_index(db):
    db.runstats("f")
    info = db.explain("SELECT * FROM f WHERE state = 'a'")
    assert info["access"] == "table_scan"


def test_inequality_not_sargable(db):
    db.runstats("f")
    info = db.explain("SELECT * FROM f WHERE name <> 'n5'")
    assert info["access"] == "table_scan"


def test_update_and_delete_use_chosen_access_path(db):
    db.runstats("f")
    assert db.explain("UPDATE f SET state = 'b' WHERE name = ?")[
        "access"] == "index_scan"
    assert db.explain("DELETE FROM f WHERE name = ?")["access"] == "index_scan"


def test_cost_model_no_locking_term(db):
    """The cost numbers depend only on statistics — by design (the flaw)."""
    db.runstats("f")
    cost_idle = db.explain("SELECT * FROM f WHERE name = ?")["cost"]
    db._invalidate_plans()
    # "Concurrency" cannot influence the optimizer: same cost regardless.
    cost_again = db.explain("SELECT * FROM f WHERE name = ?")["cost"]
    assert cost_idle == cost_again


def test_table_scans_counted_in_metrics(db):
    def go():
        session = db.session()
        yield from session.execute("SELECT * FROM f WHERE state = 'a'")
        yield from session.commit()
    db.sim.run_process(go())
    assert db.metrics.table_scans >= 1

"""Tokenizer tests."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("select") == [("KEYWORD", "SELECT")]
    assert kinds("SeLeCt") == [("KEYWORD", "SELECT")]


def test_identifiers_preserve_case():
    assert kinds("dfm_file") == [("IDENT", "dfm_file")]
    assert kinds("MyTable") == [("IDENT", "MyTable")]


def test_numbers_int_and_float():
    assert kinds("42 4.5") == [("NUMBER", 42), ("NUMBER", 4.5)]


def test_string_literal():
    assert kinds("'hello'") == [("STRING", "hello")]


def test_string_with_escaped_quote():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_unterminated_string_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize("'oops")


def test_multichar_operators_lex_greedily():
    assert kinds("<= >= <> !=") == [
        ("OP", "<="), ("OP", ">="), ("OP", "<>"), ("OP", "!=")]


def test_params_and_punctuation():
    assert kinds("(?, ?)") == [("OP", "("), ("OP", "?"), ("OP", ","),
                               ("OP", "?"), ("OP", ")")]


def test_line_comments_skipped():
    assert kinds("SELECT -- comment\n1") == [("KEYWORD", "SELECT"),
                                             ("NUMBER", 1)]


def test_types_tokenized_as_type():
    assert kinds("INT TEXT VARCHAR") == [("TYPE", "INT"), ("TYPE", "TEXT"),
                                         ("TYPE", "VARCHAR")]


def test_unexpected_character_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize("SELECT @")


def test_eof_token_terminates_stream():
    tokens = tokenize("SELECT")
    assert tokens[-1].kind == "EOF"

"""EXPLAIN statement: report access paths without executing."""

import pytest

from repro.minidb import Database, DBConfig


@pytest.fixture
def db(sim):
    db = Database(sim, "ex", DBConfig())

    def setup():
        session = db.session()
        yield from session.execute("CREATE TABLE t (a INT, b TEXT)")
        yield from session.execute("CREATE UNIQUE INDEX t_a ON t (a)")
        for i in range(10):
            yield from session.execute(
                "INSERT INTO t (a, b) VALUES (?, 'x')", (i,))
        yield from session.commit()

    sim.run_process(setup())
    return db


def explain(db, sql):
    def go():
        session = db.session()
        result = yield from session.execute(sql)
        yield from session.commit()
        return result.rows[0]
    return db.sim.run_process(go())


def test_explain_select_reports_plan(db):
    kind, access, index, cost = explain(db, "EXPLAIN SELECT * FROM t "
                                            "WHERE a = 1")
    assert kind == "select"
    assert access == "table_scan"   # default stats: card=0
    assert cost is not None


def test_explain_reflects_statistics(db):
    db.set_table_stats("t", card=1_000_000, colcard={"a": 1_000_000})
    _, access, index, _ = explain(db, "EXPLAIN SELECT * FROM t WHERE a = 1")
    assert access == "index_scan"
    assert index == "t_a"


def test_explain_update_and_delete(db):
    assert explain(db, "EXPLAIN UPDATE t SET b = 'y' WHERE a = 1")[0] == \
        "update"
    assert explain(db, "EXPLAIN DELETE FROM t WHERE a = 1")[0] == "delete"


def test_explain_insert(db):
    kind, access, index, cost = explain(
        db, "EXPLAIN INSERT INTO t (a, b) VALUES (99, 'z')")
    assert kind == "insert"
    assert access == "n/a"


def test_explain_does_not_execute(db):
    explain(db, "EXPLAIN DELETE FROM t")
    def count():
        session = db.session()
        result = yield from session.execute("SELECT COUNT(*) FROM t")
        yield from session.commit()
        return result.scalar()
    assert db.sim.run_process(count()) == 10  # nothing was deleted


def test_explain_takes_no_locks(db):
    def go():
        session = db.session()
        yield from session.execute("EXPLAIN SELECT * FROM t WHERE a = 1")
        return session.txn
    assert db.sim.run_process(go()) is None  # no transaction even began

"""Auto-RUNSTATS on the DLFM local database.

With ``DLFMConfig.auto_runstats`` on and the paper's hand-crafted
pinning OFF, ``dfm_file`` growth from ordinary link traffic trips the
mutation threshold and the probe plan flips to the index WITHOUT any
``set_stats`` call. With pinning ON, auto-RUNSTATS never touches the
pinned tables — the guard stays authoritative.
"""

from repro.dlfm.config import DLFMConfig
from repro.host import DatalinkSpec, build_url
from repro.system import System

PROBE = "SELECT state FROM dfm_file WHERE filename = ? AND check_flag = ?"


def build_system(pin: bool, auto: bool) -> System:
    config = DLFMConfig.tuned()
    config.pin_statistics = pin
    config.auto_runstats = auto
    config.local_db = config.local_db.with_changes(
        auto_runstats_threshold=10, auto_runstats_fraction=0.2)
    return System(seed=13, dlfm_config=config)


def link_files(system: System, count: int):
    def go():
        yield from system.host.create_datalink_table(
            "t", [("id", "INT"), ("f", "TEXT")], {"f": DatalinkSpec()})
        session = system.session()
        for i in range(count):
            path = f"/auto/f{i:04d}"
            system.create_user_file("fs1", path, owner="u")
            yield from session.execute(
                "INSERT INTO t (id, f) VALUES (?, ?)",
                (i, build_url("fs1", path)))
            if (i + 1) % 10 == 0:
                yield from session.commit()
        yield from session.commit()

    system.run(go())


def test_growth_flips_probe_to_index_without_set_stats():
    system = build_system(pin=False, auto=True)
    db = system.dlfms["fs1"].db
    assert db.explain(PROBE)["access"] == "table_scan"  # newborn stats
    link_files(system, 120)
    assert db.metrics.auto_runstats_runs >= 1
    stats = db.catalog.stats_for("dfm_file")
    assert not stats.manual                     # no pinning involved
    assert stats.card > 0
    assert db.explain(PROBE)["access"] == "index_scan"


def test_without_auto_the_probe_stays_a_scan():
    system = build_system(pin=False, auto=False)
    db = system.dlfms["fs1"].db
    link_files(system, 120)
    assert db.metrics.auto_runstats_runs == 0
    assert db.explain(PROBE)["access"] == "table_scan"


def test_pinned_tables_are_never_auto_refreshed():
    system = build_system(pin=True, auto=True)
    db = system.dlfms["fs1"].db
    pinned_card = db.catalog.stats_for("dfm_file").card
    link_files(system, 120)
    stats = db.catalog.stats_for("dfm_file")
    assert stats.manual                         # the guard's stats
    assert stats.card == pinned_card            # untouched by growth
    assert db.explain(PROBE)["access"] == "index_scan"

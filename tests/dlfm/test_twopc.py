"""Two-phase commit, indoubt resolution and crash recovery (§3.3, E10)."""

import pytest

from repro.dlfm import api
from repro.errors import TwoPCProtocolError
from repro.kernel import Timeout, rpc

from tests.dlfm.conftest import insert_clip, url


def test_txn_table_empty_after_clean_commit(media):
    metrics = media.dlfms["fs1"].metrics
    prepares_before = metrics.prepares
    commits_before = metrics.commits

    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].db.table_rows("dfm_txn") == []
    assert metrics.prepares == prepares_before + 1
    assert metrics.commits == commits_before + 1


def test_direct_protocol_out_of_order_commit_rejected(media):
    dlfm = media.dlfms["fs1"]

    def go():
        chan = dlfm.connect()
        yield from rpc.call(media.sim, chan, api.BeginTxn("hostdb", 12345))
        with pytest.raises(TwoPCProtocolError):
            yield from rpc.call(media.sim, chan,
                                api.Commit("hostdb", 12345))
        return True

    assert media.run(go()) is True


def test_commit_is_idempotent_for_unknown_txn(media):
    """Redelivered phase-2 verbs after recovery must be harmless."""
    dlfm = media.dlfms["fs1"]

    def go():
        chan = dlfm.connect()
        result = yield from rpc.call(media.sim, chan,
                                     api.Commit("hostdb", 99999))
        again = yield from rpc.call(media.sim, chan,
                                    api.Abort("hostdb", 99999))
        return result, again

    result, again = media.run(go())
    assert result["outcome"] == "already-finished"
    assert again["outcome"] == "already-finished"


def test_dlfm_crash_before_prepare_loses_subtransaction(media):
    """Host abort after a DLFM crash finds nothing to undo — the local
    database's own recovery already rolled the in-flight work back."""
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        # crash the DLFM mid-transaction (before prepare)
        media.dlfms["fs1"].crash()
        media.dlfms["fs1"].restart()
        with pytest.raises(Exception):
            yield from session.commit()  # channel died → commit fails
        return True

    assert media.run(go()) is True
    assert media.dlfms["fs1"].linked_count() == 0
    assert media.dlfms["fs1"].db.table_rows("dfm_txn") == []


def test_dlfm_crash_after_prepare_leaves_indoubt_then_host_resolves(media):
    """The E10 core: prepared + crashed → indoubt → host resolution
    commits it (decision row exists)."""
    dlfm = media.dlfms["fs1"]
    host = media.host

    def prepare_and_crash():
        session = media.session()
        yield from insert_clip(session, 0)
        txn_id = session.txn_id
        # run phase 1 by hand so we can crash between prepare and commit
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        # decision recorded durably on the host side
        yield from session.session.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_id, "fs1"))
        yield from session.session.commit()
        dlfm.crash()
        return txn_id

    txn_id = media.run(prepare_and_crash())
    dlfm.restart()
    # the prepared txn survived into restart as indoubt
    def list_indoubt():
        chan = dlfm.connect()
        result = yield from rpc.call(media.sim, chan,
                                     api.ListIndoubt(host.dbid))
        chan.close()
        return result

    assert media.run(list_indoubt()) == [txn_id]

    def resolve():
        from repro.host.indoubt import resolve_indoubts
        return (yield from resolve_indoubts(host))

    result = media.run(resolve())
    assert result == {"committed": 1, "aborted": 0}
    assert media.dlfms["fs1"].linked_count() == 1


def test_prepared_txn_without_decision_row_aborts(media):
    """Presumed abort: host crashed before committing its decision."""
    host = media.host

    def prepare_only():
        session = media.session()
        yield from insert_clip(session, 0)
        txn_id = session.txn_id
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        return txn_id

    media.run(prepare_only())

    def resolve():
        from repro.host.indoubt import resolve_indoubts
        return (yield from resolve_indoubts(host))

    result = media.run(resolve())
    assert result == {"committed": 0, "aborted": 1}
    assert media.dlfms["fs1"].linked_count() == 0


def test_phase2_abort_restores_unlink_and_drops_new_links(media):
    """Delayed-update scheme: abort after prepare must undo hardened
    metadata (the paper's 'rolling back transaction update after local
    database commit')."""
    host = media.host

    def setup():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()

    media.run(setup())

    def prepared_then_abort():
        session = media.session()
        # one transaction: unlink clip0, link clip1
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "new", url(1)))
        txn_id = session.txn_id
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        # host decides ABORT (e.g. another participant voted no)
        yield from session._send_control("fs1", api.Abort(host.dbid,
                                                          txn_id))
        yield from session.session.rollback()
        return txn_id

    media.run(prepared_then_abort())
    rows = media.dlfms["fs1"].file_entries()
    # clip0 back to linked; clip1's entry gone
    linked = [r for r in rows if r[8] == "linked"]
    assert len(linked) == 1
    assert linked[0][0] == "/v/clip0.mpg"
    assert media.dlfms["fs1"].db.table_rows("dfm_txn") == []


def test_commit_survives_dlfm_crash_and_restart_between_phases(media):
    host = media.host
    dlfm = media.dlfms["fs1"]

    def phase1():
        session = media.session()
        yield from insert_clip(session, 2)
        txn_id = session.txn_id
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        yield from session.session.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_id, "fs1"))
        yield from session.session.commit()
        return txn_id

    txn_id = media.run(phase1())
    dlfm.crash()
    dlfm.restart()

    def finish():
        from repro.host.indoubt import resolve_indoubts
        return (yield from resolve_indoubts(host))

    media.run(finish())
    assert dlfm.linked_count() == 1
    # decision row forgotten after successful phase 2
    assert host.db.table_rows("dlk_indoubt") == []


def test_host_crash_and_restart_redrives_phase2(media):
    host = media.host

    def phase1():
        session = media.session()
        yield from insert_clip(session, 3)
        txn_id = session.txn_id
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        yield from session.session.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_id, "fs1"))
        yield from session.session.commit()
        return txn_id

    media.run(phase1())
    host.crash()

    def restart():
        return (yield from host.restart())

    result = media.run(restart())
    assert result["committed"] == 1
    assert media.dlfms["fs1"].linked_count() == 1


def test_indoubt_poller_waits_for_dlfm_to_return(media):
    host = media.host
    dlfm = media.dlfms["fs1"]

    def phase1():
        session = media.session()
        yield from insert_clip(session, 1)
        txn_id = session.txn_id
        yield from session._send_control("fs1", api.Prepare(host.dbid,
                                                            txn_id))
        yield from session.session.execute(
            "INSERT INTO dlk_indoubt (txn_id, server) VALUES (?, ?)",
            (txn_id, "fs1"))
        yield from session.session.commit()
        return txn_id

    media.run(phase1())
    dlfm.crash()

    def root():
        from repro.host.indoubt import indoubt_poller
        poller = media.sim.spawn(indoubt_poller(host, "fs1"), "poller")
        yield Timeout(20)   # DLFM stays down for a while
        dlfm.restart()
        result = yield from poller.join()
        return result

    result = media.run(root())
    assert result["committed"] == 1
    assert dlfm.linked_count() == 1

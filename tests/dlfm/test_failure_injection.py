"""Failure injection: daemons must degrade gracefully, never corrupt."""

import pytest

from repro.errors import CrashedError

from tests.dlfm.conftest import insert_clip, url


def test_copy_daemon_drops_entry_for_vanished_file(media):
    """An archive entry whose file no longer exists (pre-crash edge) is
    dropped rather than wedging the sweep forever."""
    dlfm = media.dlfms["fs1"]

    def inject():
        session = dlfm.db.session()
        yield from session.execute(
            "INSERT INTO dfm_archive (filename, recovery_id, state, "
            "enqueued_at) VALUES (?, ?, ?, ?)",
            ("/ghost/file", "rid-ghost", "pending", 0.0))
        yield from session.commit()
        done = yield from dlfm.copyd.sweep()
        return done

    done = media.run(inject())
    assert done == 0
    assert dlfm.db.table_rows("dfm_archive") == []  # entry removed
    assert media.archive.copy_count() == 0


def test_copy_daemon_survives_lock_conflicts(media):
    """A child agent holding locks on dfm_archive makes the sweep back
    off (conflict counted) without losing the pending entry."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 2.0

    def scenario():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()  # → pending archive entry
        # an interloper X-locks the pending archive row and sits on it
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "UPDATE dfm_archive SET state = 'pending' WHERE filename = ?",
            ("/v/clip0.mpg",))
        swept = yield from dlfm.copyd.sweep()
        conflicts = dlfm.copyd.conflicts
        yield from blocker.rollback()
        again = yield from dlfm.copyd.sweep()
        return swept, conflicts, again

    swept, conflicts, again = media.run(scenario())
    assert swept == 0
    assert conflicts >= 1
    assert again == 1  # succeeded once the blocker went away
    assert media.archive.copy_count() == 1


def test_upcall_daemon_fails_safe_under_contention(media):
    """If the metadata row is locked, the upcall answers 'linked' rather
    than risking a referential-integrity violation."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 1.0

    def scenario():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_file WHERE filename = ? FOR UPDATE",
            ("/v/clip0.mpg",))
        answer = yield from dlfm.upcalld.query("/v/clip0.mpg")
        yield from blocker.rollback()
        return answer

    answer = media.run(scenario())
    assert answer is not None           # fail safe: treated as linked
    assert answer["dbid"] == "unknown"


def test_gc_tolerates_missing_archive_copy(media):
    """GC of an unlinked entry whose copy was never archived
    (recovery=no churn) must not fail."""
    from repro.host import DatalinkSpec

    def scenario():
        yield from media.host.create_datalink_table(
            "scratch", [("id", "INT"), ("f", "TEXT")],
            {"f": DatalinkSpec(recovery=True)})
        session = media.session()
        yield from session.execute(
            "INSERT INTO scratch (id, f) VALUES (?, ?)", (1, url(0)))
        yield from session.commit()
        # unlink BEFORE the copy daemon ran, and drop the pending archive
        # work so no copy ever exists (simulates a copy lost to history)
        yield from session.execute("DELETE FROM scratch WHERE id = 1")
        yield from session.commit()
        dlfm_session = media.dlfms["fs1"].db.session()
        yield from dlfm_session.execute("DELETE FROM dfm_archive")
        yield from dlfm_session.commit()
        for _ in range(3):
            yield from media.backup()
        result = yield from media.dlfms["fs1"].gc.collect()
        return result

    result = media.run(scenario())
    assert result["entries"] == 1
    assert result["copies"] == 0  # nothing to delete — and no crash


def test_operations_against_crashed_dlfm_db_raise(media):
    dlfm = media.dlfms["fs1"]
    dlfm.crash()
    with pytest.raises(CrashedError):
        dlfm.db.begin()
    dlfm.restart()
    assert dlfm.db.begin() is not None


def test_daemon_sweeps_idle_system_are_noops(media):
    dlfm = media.dlfms["fs1"]

    def idle():
        swept = yield from dlfm.copyd.sweep()
        collected = yield from dlfm.gc.collect()
        return swept, collected

    swept, collected = media.run(idle())
    assert swept == 0
    assert collected == {"entries": 0, "copies": 0, "groups": 0,
                         "backups": 0}


def test_chown_restore_file_op(media):
    dlfm = media.dlfms["fs1"]

    def go():
        result = yield from dlfm.chown.request(
            "restore_file", "/fresh/file", content="data", owner="bob",
            group="users", mode=0o644)
        return result

    assert media.run(go()) == {"restored": True}
    node = media.servers["fs1"].fs.stat("/fresh/file")
    assert node.owner == "bob"
    assert node.content == "data"


def test_unknown_chown_op_rejected(media):
    from repro.errors import ReproError
    dlfm = media.dlfms["fs1"]

    def go():
        with pytest.raises(ReproError):
            yield from dlfm.chown.request("chmod-777", "/v/clip0.mpg")
        return True

    assert media.run(go()) is True

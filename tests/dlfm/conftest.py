"""Fixtures: a full System plus helpers for driving it."""

import pytest

from repro.host import DatalinkSpec, build_url
from repro.system import System


@pytest.fixture
def system():
    return System(seed=7)


@pytest.fixture
def media(system):
    """System with a datalink table and a handful of user files."""
    def setup():
        for i in range(5):
            system.create_user_file("fs1", f"/v/clip{i}.mpg", owner="alice",
                                    content=f"VIDEO-{i}" * 20)
        yield from system.host.create_datalink_table(
            "clips", [("id", "INT"), ("title", "TEXT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})

    system.run(setup())
    return system


def url(i: int, server: str = "fs1") -> str:
    return build_url(server, f"/v/clip{i}.mpg")


def insert_clip(session, i: int):
    """Generator: link clip i through SQL."""
    count = yield from session.execute(
        "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
        (i, f"clip {i}", url(i)))
    return count

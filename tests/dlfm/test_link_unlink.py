"""Link/Unlink semantics through the full stack (paper §3.2)."""

import pytest

from repro.dlff.filter import DLFM_ADMIN
from repro.errors import LinkError
from repro.fs.filesystem import READ_ONLY
from repro.kernel import Timeout

from tests.dlfm.conftest import insert_clip, url


def test_insert_links_file_and_takes_ownership(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        # Before commit: file untouched (takeover happens in phase 2).
        assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == "alice"
        yield from session.commit()

    media.run(go())
    node = media.servers["fs1"].fs.stat("/v/clip0.mpg")
    assert node.owner == DLFM_ADMIN
    assert node.mode == READ_ONLY
    assert media.dlfms["fs1"].linked_count() == 1


def test_rollback_leaves_no_link(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.rollback()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 0
    assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == "alice"


def test_link_missing_file_fails_statement_but_txn_survives(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
                (9, "ghost", url(99)))
        # first insert still alive in the transaction
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 1

    def check():
        session = media.session()
        result = yield from session.execute("SELECT COUNT(*) FROM clips")
        yield from session.commit()
        return result.scalar()

    assert media.run(check()) == 1


def test_double_link_same_file_rejected(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
                (2, "again", url(0)))
        yield from session.rollback()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 1


def test_statement_backout_unwinds_partial_links(media):
    """Second datalink column fails → the first column's link is undone
    by an in_backout request and the host row vanishes."""
    system = media

    def go():
        yield from system.host.create_datalink_table(
            "pairs", [("id", "INT"), ("a", "TEXT"), ("b", "TEXT")],
            {"a": __import__("repro.host", fromlist=["DatalinkSpec"])
                .DatalinkSpec(),
             "b": __import__("repro.host", fromlist=["DatalinkSpec"])
                .DatalinkSpec()})
        session = system.session()
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO pairs (id, a, b) VALUES (?, ?, ?)",
                (1, url(1), url(99)))  # url(99) does not exist
        yield from session.commit()

    system.run(go())
    assert system.dlfms["fs1"].linked_count() == 0
    assert system.dlfms["fs1"].metrics.backouts == 1

    def check():
        session = system.session()
        result = yield from session.execute("SELECT COUNT(*) FROM pairs")
        yield from session.commit()
        return result.scalar()

    assert system.run(check()) == 0


def test_delete_unlinks_and_restores_ownership(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 0
    node = media.servers["fs1"].fs.stat("/v/clip0.mpg")
    assert node.owner == "alice"


def test_unlinked_entry_kept_for_recovery(media):
    """recovery=yes → the unlinked entry stays for point-in-time restore."""
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        yield Timeout(10)  # let the Copy daemon archive
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()

    media.run(go())
    rows = media.dlfms["fs1"].file_entries()
    states = [row[8] for row in rows]
    assert states == ["unlinked"]


def test_no_recovery_entry_deleted_at_commit(media):
    from repro.host import DatalinkSpec

    def go():
        yield from media.host.create_datalink_table(
            "scratch", [("id", "INT"), ("f", "TEXT")],
            {"f": DatalinkSpec(access_control="full", recovery=False)})
        session = media.session()
        yield from session.execute(
            "INSERT INTO scratch (id, f) VALUES (?, ?)", (1, url(3)))
        yield from session.commit()
        yield from session.execute("DELETE FROM scratch WHERE id = 1")
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].file_entries() == []


def test_update_moves_link_same_transaction(media):
    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        yield from session.execute(
            "UPDATE clips SET video = ? WHERE id = 0", (url(1),))
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 1
    assert media.servers["fs1"].fs.stat("/v/clip1.mpg").owner == DLFM_ADMIN
    assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == "alice"


def test_unlink_and_relink_same_file_one_transaction(media):
    """The paper's 'important customer requirement': move a file's link
    from one table to another within one transaction."""
    from repro.host import DatalinkSpec

    def go():
        yield from media.host.create_datalink_table(
            "archive_clips", [("id", "INT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})
        session = media.session()
        yield from insert_clip(session, 0)
        yield from session.commit()
        # One transaction: remove from clips, add to archive_clips.
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.execute(
            "INSERT INTO archive_clips (id, video) VALUES (?, ?)",
            (0, url(0)))
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 1
    assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == DLFM_ADMIN


def test_concurrent_double_link_race_one_wins(media):
    """The check-flag unique-index race closure (E9)."""
    outcomes = []

    def client(delay):
        session = media.session()
        yield Timeout(delay)
        try:
            yield from session.execute(
                "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
                (int(delay * 10), "race", url(4)))
            yield from session.commit()
            outcomes.append("ok")
        except LinkError:
            yield from session.rollback()
            outcomes.append("already-linked")

    def root():
        media.sim.spawn(client(0.0))
        media.sim.spawn(client(0.1))
        yield Timeout(30)

    media.run(root())
    assert sorted(outcomes) == ["already-linked", "ok"]
    assert media.dlfms["fs1"].linked_count() == 1


def test_move_then_unlink_restores_true_owner(media):
    """Regression (found by hypothesis): link+commit, then in one
    transaction move the link (unlink+relink) AND unlink again — the
    relink must inherit the ORIGINAL owner from the unlinking entry, not
    stat the currently-DB-owned file."""
    def go():
        session = media.session()
        yield from insert_clip(session, 1)
        yield from session.commit()
        # one transaction: move the link to a new row, then drop it
        yield from session.execute("DELETE FROM clips WHERE id = 1")
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (2, "moved", url(1)))
        yield from session.execute("DELETE FROM clips WHERE id = 2")
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 0
    node = media.servers["fs1"].fs.stat("/v/clip1.mpg")
    assert node.owner == "alice"  # NOT dlfmadm


def test_null_datalink_value_is_fine(media):
    def go():
        session = media.session()
        yield from session.execute(
            "INSERT INTO clips (id, title, video) VALUES (?, ?, ?)",
            (1, "no file", None))
        yield from session.commit()

    media.run(go())
    assert media.dlfms["fs1"].linked_count() == 0

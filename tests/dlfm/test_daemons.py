"""Service daemons: Copy, Delete-Group, GC, Upcall, Chown (Fig. 5)."""

import pytest

from repro.errors import PermissionDenied
from repro.kernel import Timeout

from tests.dlfm.conftest import insert_clip, url


def commit_links(media, ids):
    def go():
        session = media.session()
        for i in ids:
            yield from insert_clip(session, i)
        yield from session.commit()
    media.run(go())


def test_copy_daemon_archives_after_commit(media):
    commit_links(media, [0, 1])
    assert media.archive.copy_count() == 0  # nothing archived synchronously

    def wait():
        yield Timeout(15)

    media.run(wait())
    assert media.archive.copy_count() == 2
    assert media.dlfms["fs1"].db.table_rows("dfm_archive") == []
    # file entries flagged archived
    assert all(row[15] == 1 for row in media.dlfms["fs1"].file_entries())


def test_copy_daemon_resumes_after_crash(media):
    commit_links(media, [0, 1, 2])
    dlfm = media.dlfms["fs1"]
    # crash before the copy daemon's first sweep; pending entries are
    # durable because prepare committed them locally
    dlfm.crash()
    dlfm.restart()

    def wait():
        yield Timeout(15)

    media.run(wait())
    assert media.archive.copy_count() == 3


def test_delete_group_daemon_unlinks_dropped_table(media):
    commit_links(media, [0, 1, 2, 3])

    def drop():
        session = media.session()
        yield from session.drop_table("clips")
        yield from session.commit()
        yield Timeout(10)  # daemon works asynchronously after commit

    media.run(drop())
    dlfm = media.dlfms["fs1"]
    assert dlfm.linked_count() == 0
    # recovery=yes → unlinked markers kept
    states = {row[8] for row in dlfm.file_entries()}
    assert states == {"unlinked"}
    # files released back to their owner
    assert media.servers["fs1"].fs.stat("/v/clip0.mpg").owner == "alice"
    # host table really dropped
    assert "clips" not in media.host.db.catalog.tables
    # transaction table fully drained
    assert dlfm.db.table_rows("dfm_txn") == []


def test_drop_table_rollback_keeps_links(media):
    commit_links(media, [0])

    def drop_then_rollback():
        session = media.session()
        yield from session.drop_table("clips")
        yield from session.rollback()
        yield Timeout(10)

    media.run(drop_then_rollback())
    assert media.dlfms["fs1"].linked_count() == 1
    assert "clips" in media.host.db.catalog.tables
    groups = media.dlfms["fs1"].db.table_rows("dfm_group")
    assert all(row[4] == "active" for row in groups)


def test_delete_group_daemon_resumes_after_crash(media):
    """Commit the drop, crash DLFM before the daemon runs, restart: the
    committed transaction entry drives the rescan (§3.5)."""
    commit_links(media, [0, 1, 2])
    dlfm = media.dlfms["fs1"]

    def drop():
        session = media.session()
        yield from session.drop_table("clips")
        yield from session.commit()

    # freeze the daemon so it cannot start working before the crash
    next(p for p in dlfm._daemon_procs if "delgrpd" in p.name).kill()
    media.run(drop())
    assert dlfm.linked_count() == 3  # nothing unlinked yet
    dlfm.crash()
    dlfm.restart()

    def wait():
        yield Timeout(10)

    media.run(wait())
    assert dlfm.linked_count() == 0
    assert dlfm.db.table_rows("dfm_txn") == []


def test_same_filename_cannot_relink_while_group_delete_pending(media):
    commit_links(media, [0])
    dlfm = media.dlfms["fs1"]
    next(p for p in dlfm._daemon_procs if "delgrpd" in p.name).kill()

    def drop_and_try_relink():
        from repro.errors import LinkError
        from repro.host import DatalinkSpec
        session = media.session()
        yield from session.drop_table("clips")
        yield from session.commit()
        # group committed-deleted, daemon frozen → entry still linked
        yield from media.host.create_datalink_table(
            "clips2", [("id", "INT"), ("video", "TEXT")],
            {"video": DatalinkSpec()})
        session = media.session()
        with pytest.raises(LinkError):
            yield from session.execute(
                "INSERT INTO clips2 (id, video) VALUES (?, ?)", (1, url(0)))
        yield from session.rollback()
        return True

    assert media.run(drop_and_try_relink()) is True


def test_gc_prunes_old_backups_and_unlinked_entries(media):
    commit_links(media, [0])

    def scenario():
        yield Timeout(15)  # archive clip0
        session = media.session()
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()  # → unlinked entry retained
        # three backups: retention keeps the last 2
        for _ in range(3):
            yield from media.backup()
        result = yield from media.dlfms["fs1"].gc.collect()
        return result

    result = media.run(scenario())
    assert result["backups"] == 1
    # the unlink happened before the oldest kept backup → entry + copy gone
    assert result["entries"] == 1
    assert result["copies"] == 1
    assert media.dlfms["fs1"].file_entries() == []
    assert media.archive.copy_count() == 0


def test_gc_keeps_entries_needed_by_retained_backups(media):
    commit_links(media, [0])

    def scenario():
        yield Timeout(15)
        yield from media.backup()   # clip0 linked at this backup
        session = media.session()
        yield from session.execute("DELETE FROM clips WHERE id = 0")
        yield from session.commit()
        yield from media.backup()
        yield from media.backup()   # oldest retained is #2 (watermark
        # before the unlink? no — unlink before #2) — entry prunable only
        # if unlinked before the OLDEST KEPT backup.
        result = yield from media.dlfms["fs1"].gc.collect()
        return result

    result = media.run(scenario())
    # unlink happened before backup #2 (oldest kept) → prunable
    assert result["entries"] == 1


def test_gc_expired_groups(media):
    commit_links(media, [0, 1])

    def scenario():
        session = media.session()
        yield from session.drop_table("clips")
        yield from session.commit()
        yield Timeout(10)  # delete-group daemon empties the group
        # before expiry: nothing collected
        early = yield from media.dlfms["fs1"].gc.collect()
        yield Timeout(media.dlfms["fs1"].config.group_lifetime + 10)
        late = yield from media.dlfms["fs1"].gc.collect()
        return early, late

    early, late = media.run(scenario())
    assert early["groups"] == 0
    assert late["groups"] == 1
    assert late["entries"] == 2  # the unlinked markers of both files
    assert media.dlfms["fs1"].db.table_rows("dfm_group") == []


def test_upcall_daemon_answers_linked_query(media):
    commit_links(media, [0])
    dlfm = media.dlfms["fs1"]

    def ask():
        linked = yield from dlfm.upcalld.query("/v/clip0.mpg")
        free = yield from dlfm.upcalld.query("/v/clip1.mpg")
        return linked, free

    linked, free = media.run(ask())
    assert linked == {"dbid": "hostdb", "access_ctl": "full"}
    assert free is None


def test_chown_daemon_rejects_bad_secret(media):
    dlfm = media.dlfms["fs1"]

    def forge():
        from repro.kernel.rpc import call
        with pytest.raises(PermissionDenied):
            yield from call(media.sim, dlfm.chown.chan,
                            {"secret": "wrong", "op": "takeover",
                             "path": "/v/clip0.mpg"})
        return True

    assert media.run(forge()) is True
    assert dlfm.chown.denied == 1


def test_partial_access_control_uses_upcall(media):
    from repro.host import DatalinkSpec

    def go():
        yield from media.host.create_datalink_table(
            "docs", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control="partial", recovery=False)})
        media.create_user_file("fs1", "/docs/a.txt", owner="carol",
                               content="hi")
        session = media.session()
        yield from session.execute(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            (1, "dlfs://fs1/docs/a.txt"))
        yield from session.commit()
        # partial control: owner unchanged, file still readable normally
        node = media.servers["fs1"].fs.stat("/docs/a.txt")
        assert node.owner == "carol"
        # but delete is rejected via upcall
        from repro.errors import LinkedFileError
        with pytest.raises(LinkedFileError):
            yield from media.filtered_fs("fs1").delete("/docs/a.txt",
                                                       "carol")
        return media.dlfms["fs1"].filter.upcalls_made

    upcalls = media.run(go())
    assert upcalls >= 1

"""Property-based DLFM invariant testing.

Random sequences of datalink operations (insert/delete/update of rows,
commits and rollbacks) must preserve the system's core invariants:

I1  at most one *linked* dfm_file entry per filename;
I2  after commit, a file is owned by the DLFM admin user iff it is
    linked under full access control;
I3  the set of linked files equals the set of URLs in committed host
    rows;
I4  the DLFM transaction table is empty when no transaction is open and
    no group work is pending;
I5  the check-flag discipline: linked ⇔ check_flag = '0'.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlff.filter import DLFM_ADMIN
from repro.dlfm import schema
from repro.errors import TransactionAborted
from repro.host import DatalinkSpec, build_url
from repro.system import System

N_FILES = 6

# op: (kind, file index) — "txn_end" ops carry commit/rollback choice
op_strategy = st.one_of(
    st.tuples(st.just("link"), st.integers(0, N_FILES - 1)),
    st.tuples(st.just("unlink"), st.integers(0, N_FILES - 1)),
    st.tuples(st.just("move"), st.integers(0, N_FILES - 1)),
    st.tuples(st.just("commit"), st.just(0)),
    st.tuples(st.just("rollback"), st.just(0)),
)


def check_invariants(system, committed_links: dict):
    dlfm = system.dlfms["fs1"]
    entries = dlfm.file_entries()

    # I1 + I5
    linked = [row for row in entries if row[8] == schema.ST_LINKED]
    per_file = Counter(row[0] for row in linked)
    assert all(count == 1 for count in per_file.values()), per_file
    for row in entries:
        if row[8] == schema.ST_LINKED:
            assert row[9] == schema.LINKED_FLAG
        else:
            assert row[9] != schema.LINKED_FLAG

    # I3: linked set == committed host references
    assert set(per_file) == set(committed_links.values())

    # I2: ownership reflects linkage (full access control)
    for i in range(N_FILES):
        path = f"/inv/f{i}"
        owner = system.servers["fs1"].fs.stat(path).owner
        if path in per_file:
            assert owner == DLFM_ADMIN, f"{path} linked but owner {owner}"
        else:
            assert owner == "user", f"{path} free but owner {owner}"

    # I4
    assert dlfm.db.table_rows("dfm_txn") == []


@settings(max_examples=30, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=15))
def test_random_op_sequences_preserve_invariants(ops):
    system = System(seed=13)

    def setup():
        yield from system.host.create_datalink_table(
            "inv", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control="full", recovery=False)})
        for i in range(N_FILES):
            system.create_user_file("fs1", f"/inv/f{i}", owner="user")

    system.run(setup())

    committed: dict[int, str] = {}   # row id → path (committed state)
    pending: dict[int, str] = {}     # row id → path (open transaction)
    row_counter = [0]

    def driver():
        session = system.session()
        in_txn = {"dirty": False}

        def end_txn(commit):
            if commit:
                yield from session.commit()
                committed.clear()
                committed.update(pending)
            else:
                yield from session.rollback()
                pending.clear()
                pending.update(committed)
            in_txn["dirty"] = False

        pending.update(committed)
        for kind, index in ops:
            path = f"/inv/f{index}"
            url = build_url("fs1", path)
            try:
                if kind == "link":
                    if path in pending.values():
                        continue  # a second link would (correctly) fail
                    row_counter[0] += 1
                    row_id = row_counter[0]
                    yield from session.execute(
                        "INSERT INTO inv (id, doc) VALUES (?, ?)",
                        (row_id, url))
                    pending[row_id] = path
                    in_txn["dirty"] = True
                elif kind == "unlink":
                    victims = [rid for rid, p in pending.items()
                               if p == path]
                    if not victims:
                        continue
                    yield from session.execute(
                        "DELETE FROM inv WHERE id = ?", (victims[0],))
                    del pending[victims[0]]
                    in_txn["dirty"] = True
                elif kind == "move":
                    # unlink+relink in one transaction: move the link to
                    # a fresh row id
                    victims = [rid for rid, p in pending.items()
                               if p == path]
                    if not victims:
                        continue
                    yield from session.execute(
                        "DELETE FROM inv WHERE id = ?", (victims[0],))
                    del pending[victims[0]]
                    row_counter[0] += 1
                    yield from session.execute(
                        "INSERT INTO inv (id, doc) VALUES (?, ?)",
                        (row_counter[0], url))
                    pending[row_counter[0]] = path
                    in_txn["dirty"] = True
                elif kind == "commit":
                    yield from end_txn(commit=True)
                else:
                    yield from end_txn(commit=False)
            except TransactionAborted:
                yield from session.rollback()
                pending.clear()
                pending.update(committed)
                in_txn["dirty"] = False
        # close any open transaction so invariants can be checked
        yield from end_txn(commit=True)

    system.run(driver())
    check_invariants(system, committed)


@settings(max_examples=20, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=10), st.booleans())
def test_invariants_survive_crash_and_recovery(ops, crash_dlfm):
    """Same fuzz, but with a crash+restart+indoubt-resolution at the end."""
    system = System(seed=29)

    def setup():
        yield from system.host.create_datalink_table(
            "inv", [("id", "INT"), ("doc", "TEXT")],
            {"doc": DatalinkSpec(access_control="full", recovery=False)})
        for i in range(N_FILES):
            system.create_user_file("fs1", f"/inv/f{i}", owner="user")

    system.run(setup())
    committed: dict[int, str] = {}
    row_counter = [0]

    def driver():
        session = system.session()
        pending = dict(committed)
        for kind, index in ops:
            path = f"/inv/f{index}"
            url = build_url("fs1", path)
            try:
                if kind == "link" and path not in pending.values():
                    row_counter[0] += 1
                    yield from session.execute(
                        "INSERT INTO inv (id, doc) VALUES (?, ?)",
                        (row_counter[0], url))
                    pending[row_counter[0]] = path
                elif kind == "unlink":
                    victims = [rid for rid, p in pending.items()
                               if p == path]
                    if victims:
                        yield from session.execute(
                            "DELETE FROM inv WHERE id = ?", (victims[0],))
                        del pending[victims[0]]
                elif kind == "commit":
                    yield from session.commit()
                    committed.clear()
                    committed.update(pending)
                elif kind == "rollback":
                    yield from session.rollback()
                    pending = dict(committed)
            except TransactionAborted:
                yield from session.rollback()
                pending = dict(committed)
        yield from session.rollback()  # abandon whatever is open

    system.run(driver())
    if crash_dlfm:
        system.dlfms["fs1"].crash()
        system.dlfms["fs1"].restart()
        from repro.host.indoubt import resolve_indoubts
        system.run(resolve_indoubts(system.host))
    check_invariants(system, committed)

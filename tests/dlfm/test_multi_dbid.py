"""Multi-dbid regressions: two host databases sharing ONE DLFM.

Every maintenance path in the DLFM — unlink's delayed-update mark,
restore's pass-1 release, reconcile's EXCEPT set difference — must scope
its predicates by dbid, or one host database's utilities eat another's
metadata. These tests collide filenames and recovery-id orderings across
dbids on purpose: recovery ids sort by dbid prefix ("otherdb-…" >
"hostdb-…"), so an unscoped watermark comparison in restore would
release every other host's links.
"""

import pytest

from repro.dlfm import api, schema
from repro.errors import UnlinkError
from repro.host import DatalinkSpec, HostDB, build_url
from repro.host.datalink import shadow_column
from repro.kernel import rpc
from repro.system import System


@pytest.fixture
def shared():
    """One System plus a SECOND host database attached to the same DLFM."""
    system = System(seed=29)
    other = HostDB(system.sim, "otherdb", system.dlfms)

    def setup():
        for host in (system.host, other):
            yield from host.create_datalink_table(
                "t", [("id", "INT"), ("doc", "TEXT")],
                {"doc": DatalinkSpec(recovery=False)})
        for i in range(6):
            system.create_user_file("fs1", f"/md/f{i}", owner="u")

    system.run(setup())
    return system, other


def link(host, path, row_id=1):
    """Generator: link ``path`` into ``host``'s table t via SQL."""
    session = host.session()
    yield from session.execute(
        "INSERT INTO t (id, doc) VALUES (?, ?)",
        (row_id, build_url("fs1", path)))
    yield from session.commit()


def entry_states(dlfm):
    return {(e[0], e[1]): (e[8], e[9]) for e in dlfm.file_entries()}


def test_unlink_from_other_dbid_leaves_entry_alone(shared):
    """otherdb issuing UnlinkFile for a file hostdb linked must fail —
    and must not flip hostdb's entry to unlinking (both the existence
    check and the delayed-update UPDATE are scoped by dbid)."""
    system, other = shared
    dlfm = system.dlfms["fs1"]

    def go():
        yield from link(system.host, "/md/f0")
        chan = dlfm.connect()
        yield from rpc.call(system.sim, chan, api.BeginTxn("otherdb", 901))
        with pytest.raises(UnlinkError):
            yield from rpc.call(system.sim, chan, api.UnlinkFile(
                "otherdb", 901, "/md/f0", other.recovery_ids.next()))
        yield from rpc.call(system.sim, chan, api.Abort("otherdb", 901))
        chan.close()

    system.run(go())
    assert entry_states(dlfm) == {
        ("/md/f0", "hostdb"): (schema.ST_LINKED, schema.LINKED_FLAG)}


def test_restore_only_releases_own_post_backup_links(shared):
    """hostdb restores to a backup taken before any links. Both hosts
    linked files after that watermark; only hostdb's link may be
    released — otherdb's recovery ids compare greater than the watermark
    string, so an unscoped pass-1 would release its file too."""
    system, other = shared
    dlfm = system.dlfms["fs1"]

    def go():
        backup_id = yield from system.backup()
        yield from link(system.host, "/md/f1")
        yield from link(other, "/md/f2")
        result = yield from system.restore(backup_id)
        return result

    result = system.run(go())
    assert result["fs1"] == {"restored": 0, "released": 1}
    entries = entry_states(dlfm)
    assert ("/md/f1", "hostdb") not in entries
    assert entries[("/md/f2", "otherdb")] == (schema.ST_LINKED,
                                              schema.LINKED_FLAG)
    # the released file went back to its owner; otherdb's file is still
    # under database control (owned by the DLFM admin user)
    fs = system.servers["fs1"].fs
    assert fs.stat("/md/f1").owner == "u"
    assert fs.stat("/md/f2").owner != "u"


def test_reconcile_reports_conflict_for_file_linked_by_other_dbid(shared):
    """hostdb's table references a file that otherdb currently has
    linked (the unique (filename, check_flag) slot is taken). Reconcile
    must report the conflict instead of crashing on the duplicate key —
    and must not touch otherdb's entry."""
    system, other = shared
    dlfm = system.dlfms["fs1"]

    def go():
        yield from link(other, "/md/f3")
        # manufacture the skew: hostdb references the same file with no
        # dfm_file entry of its own (e.g. restored from an old image)
        plain = system.host.db.session()
        yield from plain.execute(
            f"INSERT INTO t (id, doc, {shadow_column('doc')}) "
            f"VALUES (?, ?, ?)",
            (7, build_url("fs1", "/md/f3"),
             system.host.recovery_ids.next()))
        yield from plain.commit()
        return (yield from system.reconcile())

    result = system.run(go())
    assert result["fs1"]["conflicts"] == ["/md/f3"]
    assert result["fs1"]["relinked"] == 0
    assert result["fs1"]["nulled"] == 0
    assert entry_states(dlfm) == {
        ("/md/f3", "otherdb"): (schema.ST_LINKED, schema.LINKED_FLAG)}


def test_reconcile_relinks_own_entry_despite_other_dbid_rows(shared):
    """A missing hostdb entry is relinked even though otherdb has linked
    rows of its own — and reconcile for hostdb never counts otherdb's
    entries as orphans."""
    system, other = shared
    dlfm = system.dlfms["fs1"]

    def go():
        yield from link(system.host, "/md/f4")
        yield from link(other, "/md/f5")
        # wipe hostdb's DLFM entry behind everyone's back
        dlfm_session = dlfm.db.session()
        yield from dlfm_session.execute(
            "DELETE FROM dfm_file WHERE filename = ?", ("/md/f4",))
        yield from dlfm_session.commit()
        return (yield from system.reconcile())

    result = system.run(go())
    assert result["fs1"] == {"relinked": 1, "removed": 0, "dangling": [],
                             "conflicts": [], "nulled": 0}
    entries = entry_states(dlfm)
    assert entries[("/md/f4", "hostdb")] == (schema.ST_LINKED,
                                             schema.LINKED_FLAG)
    assert entries[("/md/f5", "otherdb")] == (schema.ST_LINKED,
                                              schema.LINKED_FLAG)

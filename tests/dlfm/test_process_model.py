"""Figure 5 — the DLFM process model.

The main daemon spawns a child agent per host connection plus the
service daemons (the paper's six, plus the MVCC version-merge daemon);
all are real simulation processes.
"""

import pytest

from repro.dlfm import api
from repro.kernel import rpc


def test_service_daemons_running(media):
    dlfm = media.dlfms["fs1"]
    names = sorted(p.name for p in dlfm._daemon_procs)
    expected = sorted(f"fs1-{d}" for d in
                      ("chownd", "copyd", "retrieved", "delgrpd", "gcd",
                       "merged", "upcalld"))
    assert names == expected
    assert all(not p.finished for p in dlfm._daemon_procs)


def test_child_agent_per_connection(media):
    dlfm = media.dlfms["fs1"]
    before = len(dlfm._agents)
    chan_a = dlfm.connect()
    chan_b = dlfm.connect()
    assert len(dlfm._agents) == before + 2
    assert chan_a is not chan_b  # separate agents, separate channels


def test_agents_serve_their_own_connections_independently(media):
    """Two connections can run interleaved transactions — each is served
    by its own child agent (§3.5)."""
    dlfm = media.dlfms["fs1"]

    def go():
        chan_a = dlfm.connect()
        chan_b = dlfm.connect()
        yield from rpc.call(media.sim, chan_a,
                            api.BeginTxn("hostdb", 501))
        yield from rpc.call(media.sim, chan_b,
                            api.BeginTxn("hostdb", 502))
        # both agents hold an open transaction concurrently
        a = yield from rpc.call(media.sim, chan_a,
                                api.Prepare("hostdb", 501))
        b = yield from rpc.call(media.sim, chan_b,
                                api.Prepare("hostdb", 502))
        return a, b

    a, b = media.run(go())
    # Neither transaction did any work, so both prepares answer with the
    # read-only vote and are released at end of phase 1 — no Commit needed.
    assert a == {"vote": "read-only"}
    assert b == {"vote": "read-only"}
    assert media.dlfms["fs1"].metrics.readonly_votes == 2


def test_agent_busy_blocks_next_sender(media):
    """While a child agent processes one request, the next send on that
    connection blocks (rendezvous) — the mechanism behind E6."""
    dlfm = media.dlfms["fs1"]

    def slow_and_fast():
        chan = dlfm.connect()
        # occupy the agent with a request that takes a while: a commit of
        # an unknown txn is fast, so instead use ListIndoubt after making
        # the local db slow via a held lock — simpler: just verify FIFO
        # ordering of two requests on one channel.
        reply1 = yield from rpc.cast(media.sim, chan,
                                     api.ListIndoubt("hostdb"))
        reply2 = yield from rpc.cast(media.sim, chan,
                                     api.ListIndoubt("hostdb"))
        first = yield from rpc.wait_reply(reply1)
        second = yield from rpc.wait_reply(reply2)
        return first, second

    first, second = media.run(slow_and_fast())
    assert first == [] and second == []


def test_stopped_dlfm_refuses_connections(media):
    dlfm = media.dlfms["fs1"]
    dlfm.stop()
    from repro.errors import TwoPCProtocolError
    with pytest.raises(TwoPCProtocolError):
        dlfm.connect()
    dlfm.start()
    assert dlfm.connect() is not None


def test_daemons_die_on_crash_and_restart_respawns(media):
    dlfm = media.dlfms["fs1"]
    old = list(dlfm._daemon_procs)
    dlfm.crash()
    assert dlfm._daemon_procs == []
    dlfm.restart()
    assert len(dlfm._daemon_procs) == 7
    assert all(p not in old for p in dlfm._daemon_procs)

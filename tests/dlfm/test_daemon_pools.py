"""Parallel daemon worker pools: claims, concurrency, crash safety."""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultRule
from repro.dlfm import DLFMConfig
from repro.errors import CrashedError
from repro.host import DatalinkSpec, build_url
from repro.kernel import Timeout
from repro.system import System


def build_system(seed=7, injector=None, charge_time=False, **knobs):
    """System with one recovery=yes datalink table and N user files."""
    config = DLFMConfig.tuned()
    for knob, value in knobs.items():
        setattr(config, knob, value)
    # Keep the periodic sweeper parked; these tests drive sweeps directly.
    config.copy_period = 1e6
    system = System(seed=seed, dlfm_config=config, injector=injector,
                    archive_charge_time=charge_time)

    def setup():
        yield from system.host.create_datalink_table(
            "clips", [("id", "INT"), ("video", "TEXT")],
            {"video": DatalinkSpec(access_control="full", recovery=True)})

    system.run(setup())
    return system


def link_files(system, count):
    def go():
        session = system.session()
        for i in range(count):
            path = f"/v/clip{i}.mpg"
            system.create_user_file("fs1", path, owner="alice",
                                    content="V" * 100)
            yield from session.execute(
                "INSERT INTO clips (id, video) VALUES (?, ?)",
                (i, build_url("fs1", path)))
        yield from session.commit()
    system.run(go())


# ------------------------------------------------------------------ claims

def test_worker_crash_mid_claim_reclaims_exactly_once():
    """Satellite: a worker crash between claim and archive-row delete
    leaves the entry re-claimable exactly once — no lost file, no double
    archive, the archived flag flips exactly once."""
    plan = FaultPlan(name="t", rules=[
        FaultRule("daemon.worker:fs1:copyd", "crash", prob=1.0,
                  max_fires=1)])
    system = build_system(injector=FaultInjector(plan))
    link_files(system, 1)
    dlfm = system.dlfms["fs1"]

    # The sweep claims the entry and hands it to a worker; the worker
    # crashes the node at pickup. The sweep itself survives long enough
    # for its drain gate to be released by the pool teardown.
    sweep = system.sim.spawn(dlfm.copyd.sweep(), "driven-sweep")
    system.sim.run(raise_failures=False,
                   stop_when=lambda: sweep.finished)
    failures = system.sim.consume_failures()
    assert any(isinstance(error, CrashedError) for _, error in failures)
    assert not dlfm.running
    assert system.archive.copy_count() == 0

    dlfm.restart()
    # Claimed but not archived: the inflight row is the durable record.
    rows = dlfm.db.table_rows("dfm_archive")
    assert [row[2] for row in rows] == ["inflight"]
    assert dlfm.metrics.files_archived == 0
    done = system.run(dlfm.copyd.sweep(), "recovery-sweep")
    assert done == 1
    assert dlfm.copyd.reclaimed == 1           # stale claim re-queued once
    assert system.archive.copy_count() == 1    # no lost file
    assert dlfm.metrics.files_archived == 1    # no double archive
    assert dlfm.db.table_rows("dfm_archive") == []
    assert [row[15] for row in dlfm.file_entries()] == [1]

    # And the system is healthy: a second sweep finds nothing.
    assert system.run(dlfm.copyd.sweep(), "idle-sweep") == 0
    assert dlfm.copyd.reclaimed == 1


def test_concurrent_sweeps_never_double_archive():
    """A sweep racing another sweep skips rows the first one claimed."""
    system = build_system()
    link_files(system, 4)
    dlfm = system.dlfms["fs1"]

    def race():
        first = system.sim.spawn(dlfm.copyd.sweep(), "sweep-a")
        second = system.sim.spawn(dlfm.copyd.sweep(), "sweep-b")
        a = yield from first.join()
        b = yield from second.join()
        return a, b

    a, b = system.run(race())
    assert a + b == 4
    assert system.archive.copy_count() == 4
    assert dlfm.metrics.files_archived == 4
    assert dlfm.copyd.claimed == 4


# ------------------------------------------------------------------ pipelining

def test_parallel_copy_workers_pipeline_transfers():
    serial = build_system(charge_time=True, copy_workers=1)
    pooled = build_system(charge_time=True, copy_workers=4)
    elapsed = {}
    for label, system in (("serial", serial), ("pooled", pooled)):
        link_files(system, 8)
        dlfm = system.dlfms["fs1"]
        started = system.sim.now
        assert system.run(dlfm.copyd.sweep()) == 8
        elapsed[label] = system.sim.now - started
        assert system.archive.copy_count() == 8
    # 100-byte files cost 0.06 s each to transfer: 8 serial vs 2 waves.
    assert elapsed["serial"] == pytest.approx(0.48)
    assert elapsed["pooled"] == pytest.approx(0.12)


def test_concurrent_restores_pipeline_fetches():
    serial = build_system(charge_time=True, retrieve_workers=1)
    pooled = build_system(charge_time=True, retrieve_workers=4)
    elapsed = {}
    for label, system in (("serial", serial), ("pooled", pooled)):
        dlfm = system.dlfms["fs1"]

        def seed_archive(dlfm=dlfm):
            for i in range(8):
                yield from dlfm.archive.store(
                    "fs1", f"/lost/f{i}", f"rid{i}", "Y" * 100,
                    owner="alice", group="users", mode=0o640)

        system.run(seed_archive())
        started = system.sim.now

        def storm(system=system, dlfm=dlfm):
            procs = [
                system.sim.spawn(
                    dlfm.retrieved.restore(f"/lost/f{i}", f"rid{i}"),
                    f"restore-{i}")
                for i in range(8)]
            for proc in procs:
                yield from proc.join()

        system.run(storm())
        elapsed[label] = system.sim.now - started
        assert dlfm.retrieved.restored == 8
        for i in range(8):
            assert system.servers["fs1"].fs.stat(f"/lost/f{i}").owner == \
                "alice"
    assert elapsed["serial"] == pytest.approx(0.48)
    assert elapsed["pooled"] == pytest.approx(0.12)


def test_delgrp_workers_drain_independent_txns():
    system = build_system(delgrp_workers=2)
    link_files(system, 6)
    dlfm = system.dlfms["fs1"]

    def drop_and_wait():
        session = system.session()
        yield from session.drop_table("clips")
        yield from session.commit()
        yield Timeout(30)

    system.run(drop_and_wait())
    assert dlfm.linked_count() == 0
    assert dlfm.db.table_rows("dfm_txn") == []
    assert dlfm.delete_groupd.pool.metrics.completed >= 1
    assert dlfm.delete_groupd.pool.alive == 2


# ------------------------------------------------------------------ lifecycle

def test_config_knobs_size_queues_and_pools():
    system = build_system(retrieve_queue_capacity=2, retrieve_workers=3,
                          delgrp_queue_capacity=7, copy_workers=2)
    dlfm = system.dlfms["fs1"]
    assert dlfm.retrieved.chan.capacity == 2
    assert dlfm.delete_groupd.chan.capacity == 7
    assert dlfm.retrieved.pool.alive == 3
    assert dlfm.copyd.pool.alive == 2
    assert len(dlfm._pool_procs) == 6


def test_pool_workers_die_on_crash_and_restart_respawns():
    system = build_system()
    dlfm = system.dlfms["fs1"]
    assert len(dlfm._pool_procs) == 3  # one worker per pooled daemon
    dlfm.crash()
    assert dlfm._pool_procs == []
    assert dlfm.copyd.pool.alive == 0
    dlfm.restart()
    assert len(dlfm._pool_procs) == 3
    assert dlfm.copyd.pool.alive == 1
    assert dlfm.retrieved.pool.alive == 1
    assert dlfm.delete_groupd.pool.alive == 1


def test_daemon_counters_are_flat_ints():
    system = build_system()
    link_files(system, 2)
    dlfm = system.dlfms["fs1"]
    system.run(dlfm.copyd.sweep())
    counters = dlfm.daemon_counters()
    assert counters["copyd_claimed"] == 2
    assert counters["copyd_submitted"] == 2
    assert counters["copyd_completed"] == 2
    assert counters["retrieved_queue_depth"] == 0
    assert counters["delgrpd_queue_depth"] == 0
    assert all(isinstance(v, int) for v in counters.values())

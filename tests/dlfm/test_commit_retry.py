"""Deterministic tests of the phase-2 retry loop (Fig. 4) and the
periodic statistics guard."""

import pytest

from repro.dlfm import api, schema
from repro.errors import TransactionAborted
from repro.kernel import Timeout, rpc

from tests.dlfm.conftest import insert_clip


def _prepared_txn(media):
    """Drive a transaction through phase 1 by hand; return its id."""
    host = media.host

    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        txn_id = session.txn_id
        yield from session._send_control("fs1",
                                         api.Prepare(host.dbid, txn_id))
        yield from session.session.commit()
        return txn_id

    return media.run(go())


def test_phase2_commit_retries_through_held_locks(media):
    """An interloper X-locks the dfm_txn row; op_commit keeps retrying
    until the lock clears, then succeeds — never gives up, never loses
    the transaction."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 2.0
    dlfm.config.commit_retry_delay = 1.0
    txn_id = _prepared_txn(media)

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))

        chan = dlfm.connect()
        reply = yield from rpc.cast(
            media.sim, chan, api.Commit(media.host.dbid, txn_id))
        yield Timeout(10.0)   # several retry cycles happen meanwhile
        retries_while_blocked = dlfm.metrics.commit_retries
        yield from blocker.rollback()
        result = yield from rpc.wait_reply(reply)
        chan.close()
        return retries_while_blocked, result

    retries, result = media.run(scenario())
    assert retries >= 2                      # kept retrying while blocked
    assert result["outcome"] == "committed"  # and eventually won
    assert media.dlfms["fs1"].linked_count() == 1
    assert dlfm.db.table_rows("dfm_txn") == []


def test_phase2_retry_limit_can_bound_the_loop(media):
    """Experiments can bound the retry loop (the paper never does)."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 1.0
    dlfm.config.commit_retry_limit = 3
    dlfm.config.commit_retry_delay = 0.5
    txn_id = _prepared_txn(media)

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))
        chan = dlfm.connect()
        with pytest.raises(TransactionAborted):
            yield from rpc.call(media.sim, chan,
                                api.Commit(media.host.dbid, txn_id))
        chan.close()
        yield from blocker.rollback()
        # the transaction is still there — nothing was lost
        rows = dlfm.db.table_rows("dfm_txn")
        return rows

    rows = media.run(scenario())
    assert rows and rows[0][2] == schema.TXN_PREPARED
    assert dlfm.metrics.commit_retries == 3


def test_statistics_guard_runs_periodically(media):
    """A user RUNSTATS is repaired by the next GC housekeeping sweep."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.runstats("dfm_file")   # sabotage
    assert dlfm.db.catalog.stats_for("dfm_file").manual is False

    def wait_for_gc():
        yield Timeout(dlfm.config.gc_period + 5)

    media.run(wait_for_gc())
    assert dlfm.db.catalog.stats_for("dfm_file").manual is True
    assert dlfm.metrics.stats_repins >= 1

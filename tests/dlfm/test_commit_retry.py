"""Deterministic tests of the phase-2 retry loop (Fig. 4) and the
periodic statistics guard."""

import pytest

from repro.dlfm import api, schema
from repro.errors import TransactionAborted
from repro.kernel import Timeout, rpc

from tests.dlfm.conftest import insert_clip


def _prepared_txn(media):
    """Drive a transaction through phase 1 by hand; return its id."""
    host = media.host

    def go():
        session = media.session()
        yield from insert_clip(session, 0)
        txn_id = session.txn_id
        yield from session._send_control("fs1",
                                         api.Prepare(host.dbid, txn_id))
        yield from session.session.commit()
        return txn_id

    return media.run(go())


def test_phase2_commit_retries_through_held_locks(media):
    """An interloper X-locks the dfm_txn row; op_commit keeps retrying
    until the lock clears, then succeeds — never gives up, never loses
    the transaction."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 2.0
    dlfm.config.commit_retry_delay = 1.0
    txn_id = _prepared_txn(media)

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))

        chan = dlfm.connect()
        reply = yield from rpc.cast(
            media.sim, chan, api.Commit(media.host.dbid, txn_id))
        yield Timeout(10.0)   # several retry cycles happen meanwhile
        retries_while_blocked = dlfm.metrics.commit_retries
        yield from blocker.rollback()
        result = yield from rpc.wait_reply(reply)
        chan.close()
        return retries_while_blocked, result

    retries, result = media.run(scenario())
    assert retries >= 2                      # kept retrying while blocked
    assert result["outcome"] == "committed"  # and eventually won
    assert media.dlfms["fs1"].linked_count() == 1
    assert dlfm.db.table_rows("dfm_txn") == []


def test_phase2_failed_attempt_holds_no_locks_while_waiting(media):
    """Between attempts the retry loop must have rolled the failed
    attempt's local transaction back: nothing held, nothing waiting,
    no transaction left active besides the blocker's. (A leaked lock
    here would deadlock the very retry that is supposed to recover.)"""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 1.0
    dlfm.config.commit_retry_delay = 4.0
    txn_id = _prepared_txn(media)

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))
        blocker_id = blocker.txn.id
        chan = dlfm.connect()
        reply = yield from rpc.cast(
            media.sim, chan, api.Commit(media.host.dbid, txn_id))
        # attempt 1 times out at ~1 s; sample mid retry-delay, before
        # attempt 2 starts at ~5 s
        yield Timeout(2.5)
        active = [t.id for t in dlfm.db.txns.active]
        waiting = sorted(dlfm.db.locks._waiting)
        foreign = {
            head.resource: holders
            for head in dlfm.db.locks.heads.values()
            if (holders := {t for t in head.holders if t != blocker_id})
        }
        yield from blocker.rollback()
        result = yield from rpc.wait_reply(reply)
        chan.close()
        return blocker_id, active, waiting, foreign, result

    blocker_id, active, waiting, foreign, result = media.run(scenario())
    assert active == [blocker_id]   # the failed attempt's txn is gone
    assert waiting == []            # …and is not parked on any lock
    assert foreign == {}            # …and holds nothing anywhere
    assert result["outcome"] == "committed"
    assert media.dlfms["fs1"].linked_count() == 1


def test_phase2_retry_limit_can_bound_the_loop(media):
    """Experiments can bound the retry loop (the paper never does)."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.config.lock_timeout = 1.0
    dlfm.config.commit_retry_limit = 3
    dlfm.config.commit_retry_delay = 0.5
    txn_id = _prepared_txn(media)

    def scenario():
        blocker = dlfm.db.session()
        yield from blocker.execute(
            "SELECT * FROM dfm_txn WHERE txn_id = ? FOR UPDATE", (txn_id,))
        chan = dlfm.connect()
        with pytest.raises(TransactionAborted):
            yield from rpc.call(media.sim, chan,
                                api.Commit(media.host.dbid, txn_id))
        chan.close()
        yield from blocker.rollback()
        # the transaction is still there — nothing was lost
        rows = dlfm.db.table_rows("dfm_txn")
        return rows

    rows = media.run(scenario())
    assert rows and rows[0][2] == schema.TXN_PREPARED
    assert dlfm.metrics.commit_retries == 3


def test_statistics_guard_runs_periodically(media):
    """A user RUNSTATS is repaired by the next GC housekeeping sweep."""
    dlfm = media.dlfms["fs1"]
    dlfm.db.runstats("dfm_file")   # sabotage
    assert dlfm.db.catalog.stats_for("dfm_file").manual is False

    def wait_for_gc():
        yield Timeout(dlfm.config.gc_period + 5)

    media.run(wait_for_gc())
    assert dlfm.db.catalog.stats_for("dfm_file").manual is True
    assert dlfm.metrics.stats_repins >= 1

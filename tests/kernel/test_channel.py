"""Unit tests for rendezvous and buffered channels."""

import pytest

from repro.errors import ChannelClosed, ChannelTimeout
from repro.kernel import Channel, Simulator, Timeout


def test_rendezvous_sender_blocks_until_receiver():
    sim = Simulator()
    chan = Channel(sim)
    trace = []

    def sender():
        yield from chan.send("msg")
        trace.append(("sent", sim.now))

    def receiver():
        yield Timeout(5.0)
        msg = yield from chan.recv()
        trace.append(("recv", msg, sim.now))

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert ("sent", 5.0) in trace
    assert ("recv", "msg", 5.0) in trace


def test_rendezvous_receiver_blocks_until_sender():
    sim = Simulator()
    chan = Channel(sim)

    def receiver():
        msg = yield from chan.recv()
        return msg, sim.now

    def sender():
        yield Timeout(2.0)
        yield from chan.send(99)

    proc = sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert proc.result == (99, 2.0)


def test_fifo_ordering_across_multiple_senders():
    sim = Simulator()
    chan = Channel(sim)
    received = []

    def sender(i):
        yield from chan.send(i)

    def receiver():
        for _ in range(3):
            received.append((yield from chan.recv()))

    for i in range(3):
        sim.spawn(sender(i))
    sim.spawn(receiver())
    sim.run()
    assert received == [0, 1, 2]


def test_buffered_send_does_not_block_until_full():
    sim = Simulator()
    chan = Channel(sim, capacity=2)

    def sender():
        yield from chan.send(1)
        yield from chan.send(2)
        return sim.now

    proc = sim.spawn(sender())
    sim.run()
    assert proc.result == 0.0
    assert chan.pending == 2


def test_buffered_send_blocks_when_full_and_drains_in_order():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    out = []

    def sender():
        for i in range(3):
            yield from chan.send(i)
        out.append(("done-send", sim.now))

    def receiver():
        for _ in range(3):
            yield Timeout(1.0)
            out.append((yield from chan.recv()))

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert [x for x in out if isinstance(x, int)] == [0, 1, 2]


def test_recv_timeout_raises():
    sim = Simulator()
    chan = Channel(sim)

    def receiver():
        with pytest.raises(ChannelTimeout):
            yield from chan.recv(timeout=3.0)
        return sim.now

    assert sim.run_process(receiver()) == 3.0


def test_send_timeout_raises_and_removes_message():
    sim = Simulator()
    chan = Channel(sim)

    def sender():
        with pytest.raises(ChannelTimeout):
            yield from chan.send("doomed", timeout=2.0)

    def late_receiver():
        yield Timeout(10.0)
        ok, msg = chan.try_recv()
        return ok, msg

    sim.spawn(sender())
    proc = sim.spawn(late_receiver())
    sim.run()
    assert proc.result == (False, None)


def test_close_wakes_blocked_receiver_with_error():
    sim = Simulator()
    chan = Channel(sim)

    def receiver():
        with pytest.raises(ChannelClosed):
            yield from chan.recv()
        return "closed"

    def closer():
        yield Timeout(1.0)
        chan.close()

    proc = sim.spawn(receiver())
    sim.spawn(closer())
    sim.run()
    assert proc.result == "closed"


def test_close_wakes_blocked_sender_with_error():
    sim = Simulator()
    chan = Channel(sim)

    def sender():
        with pytest.raises(ChannelClosed):
            yield from chan.send("x")
        return "closed"

    def closer():
        yield Timeout(1.0)
        chan.close()

    proc = sim.spawn(sender())
    sim.spawn(closer())
    sim.run()
    assert proc.result == "closed"


def test_send_on_closed_channel_raises_immediately():
    sim = Simulator()
    chan = Channel(sim)
    chan.close()

    def sender():
        with pytest.raises(ChannelClosed):
            yield from chan.send(1)
        return True
        yield  # pragma: no cover

    assert sim.run_process(sender()) is True


def test_try_recv_nonblocking():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    assert chan.try_recv() == (False, None)

    def sender():
        yield from chan.send("v")

    sim.spawn(sender())
    sim.run()
    assert chan.try_recv() == (True, "v")


def test_pending_counts_buffer_and_blocked_senders():
    sim = Simulator()
    chan = Channel(sim, capacity=1)

    def sender(i):
        yield from chan.send(i)

    sim.spawn(sender(0))
    sim.spawn(sender(1))
    sim.run(until=1.0)
    assert chan.pending == 2  # one buffered + one blocked sender

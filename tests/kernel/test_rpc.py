"""RPC layer tests: call/cast/serve_loop semantics."""

import pytest

from repro.errors import ReproError, SimError
from repro.kernel import Channel, Simulator, Timeout
from repro.kernel.rpc import call, cast, serve_loop, wait_reply


def make_server(sim, chan, handler):
    def dispatch(payload):
        result = yield from handler(payload)
        return result
    return sim.spawn(serve_loop(chan, dispatch), "server")


def test_call_returns_result():
    sim = Simulator()
    chan = Channel(sim)

    def handler(payload):
        return payload * 2
        yield  # pragma: no cover

    make_server(sim, chan, handler)

    def client():
        return (yield from call(sim, chan, 21))

    assert sim.run_process(client()) == 42


def test_call_reraises_remote_repro_error():
    sim = Simulator()
    chan = Channel(sim)

    def handler(payload):
        raise ReproError("remote boom")
        yield  # pragma: no cover

    make_server(sim, chan, handler)

    def client():
        with pytest.raises(ReproError, match="remote boom"):
            yield from call(sim, chan, 1)
        return True

    assert sim.run_process(client()) is True


def test_requests_processed_in_fifo_order():
    sim = Simulator()
    chan = Channel(sim)
    processed = []

    def handler(payload):
        processed.append(payload)
        yield Timeout(1.0)
        return payload

    make_server(sim, chan, handler)

    def client(i):
        yield from call(sim, chan, i)

    for i in range(3):
        sim.spawn(client(i))
    sim.run()
    assert processed == [0, 1, 2]


def test_cast_returns_before_processing_completes():
    """cast = send now, reply later — the E6 async-commit mechanism."""
    sim = Simulator()
    chan = Channel(sim)
    state = {}

    def handler(payload):
        yield Timeout(5.0)
        state["done_at"] = sim.now
        return "ok"

    make_server(sim, chan, handler)

    def client():
        reply = yield from cast(sim, chan, "work")
        state["cast_returned_at"] = sim.now
        result = yield from wait_reply(reply)
        state["reply_at"] = sim.now
        return result

    assert sim.run_process(client()) == "ok"
    assert state["cast_returned_at"] == 0.0
    assert state["reply_at"] == 5.0


def test_busy_server_blocks_next_sender():
    """While the server processes one request, the next send waits."""
    sim = Simulator()
    chan = Channel(sim)

    def handler(payload):
        yield Timeout(10.0)
        return payload

    make_server(sim, chan, handler)
    sent_at = {}

    def first():
        yield from call(sim, chan, "slow")

    def second():
        yield Timeout(1.0)
        reply = yield from cast(sim, chan, "queued")
        sent_at["second"] = sim.now  # only after the server receives it
        yield from wait_reply(reply)

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert sent_at["second"] == 10.0  # blocked until the server freed up


def test_serve_loop_exits_on_channel_close():
    sim = Simulator()
    chan = Channel(sim)

    def handler(payload):
        return payload
        yield  # pragma: no cover

    server = make_server(sim, chan, handler)
    sim.run(until=1.0)
    chan.close()
    sim.run()
    assert server.finished
    assert server.error is None


def test_partition_fault_drops_reply_but_request_was_processed():
    """A ``partition`` fault on ``rpc.reply:<chan>`` models a healed
    network partition: the server received AND processed the request,
    only the reply is lost — the caller is left hanging, and the server
    keeps serving later requests normally."""
    from repro.chaos.faults import FaultInjector, FaultPlan, FaultRule

    injector = FaultInjector(FaultPlan(rules=[
        FaultRule("rpc.reply:svc", "partition", max_fires=1)]))
    sim = Simulator(seed=0, injector=injector)
    chan = Channel(sim, name="svc")
    processed = []

    def handler(payload):
        processed.append(payload)
        return payload * 10
        yield  # pragma: no cover

    make_server(sim, chan, handler)

    def client():
        reply = yield from cast(sim, chan, 1)
        with pytest.raises(SimError):
            yield from wait_reply(reply, timeout=5.0)  # reply never comes
        # The partition healed (max_fires exhausted): a re-driven
        # request goes through end to end.
        return (yield from call(sim, chan, 2))

    assert sim.run_process(client()) == 20
    assert processed == [1, 2]  # the first request WAS processed
    assert [f["rule"] for f in injector.fired] == ["partition@rpc.reply:svc"]


def test_wait_reply_timeout_raises():
    sim = Simulator()
    chan = Channel(sim)

    def handler(payload):
        yield Timeout(100.0)
        return "late"

    make_server(sim, chan, handler)

    def client():
        reply = yield from cast(sim, chan, 1)
        with pytest.raises(SimError):
            yield from wait_reply(reply, timeout=2.0)
        return sim.now

    assert sim.run_process(client()) == 2.0

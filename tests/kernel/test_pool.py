"""Unit tests for the bounded worker-pool primitive."""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultRule
from repro.errors import CrashedError, SimError, TransientIOError
from repro.kernel import Simulator, Timeout, WorkerPool


def make_pool(sim, handler, **kwargs):
    pool = WorkerPool(sim, "pool", handler, **kwargs)
    pool.start()
    return pool


def submit_and_drain(pool, items):
    for item in items:
        yield from pool.submit(item)
    yield from pool.drain()


def test_workers_overlap_handler_time():
    sim = Simulator()
    done = []

    def handler(item):
        yield Timeout(1.0)
        done.append(item)

    pool = make_pool(sim, handler, workers=4)
    sim.run_process(submit_and_drain(pool, range(8)))
    # 8 one-second items over 4 workers: two waves, not eight.
    assert sim.now == 2.0
    assert sorted(done) == list(range(8))
    assert pool.metrics.submitted == 8
    assert pool.metrics.completed == 8
    assert pool.metrics.busy_time == 8.0


def test_single_worker_is_serial():
    sim = Simulator()

    def handler(item):
        yield Timeout(1.0)

    pool = make_pool(sim, handler, workers=1)
    sim.run_process(submit_and_drain(pool, range(8)))
    assert sim.now == 8.0


def test_drain_returns_immediately_when_idle():
    sim = Simulator()

    def handler(item):
        yield Timeout(1.0)

    pool = make_pool(sim, handler, workers=2)
    sim.run_process(pool.drain())
    assert sim.now == 0.0


def test_rendezvous_submit_applies_backpressure():
    sim = Simulator()

    def handler(item):
        yield Timeout(1.0)

    pool = make_pool(sim, handler, workers=2, capacity=0)
    times = []

    def producer():
        for i in range(4):
            yield from pool.submit(i)
            times.append(sim.now)
        yield from pool.drain()

    sim.run_process(producer())
    # The first two submits hand off to idle workers at t=0; the next
    # two wait a full service time until both workers free up at t=1.
    assert times == [0.0, 0.0, 1.0, 1.0]
    assert pool.metrics.max_depth == 0


def test_buffered_queue_records_depth_high_water():
    sim = Simulator()

    def handler(item):
        yield Timeout(1.0)

    pool = make_pool(sim, handler, workers=1, capacity=8)
    sim.run_process(submit_and_drain(pool, range(6)))
    assert pool.metrics.max_depth >= 4
    assert pool.metrics.completed == 6


def test_submit_on_stopped_pool_raises():
    sim = Simulator()

    def handler(item):
        yield Timeout(1.0)

    pool = WorkerPool(sim, "pool", handler, workers=2)

    def producer():
        yield from pool.submit(1)

    with pytest.raises(SimError):
        sim.run_process(producer())


def test_stop_releases_blocked_drainers():
    sim = Simulator()

    def handler(item):
        yield Timeout(100.0)

    pool = make_pool(sim, handler, workers=1)

    def producer():
        yield from pool.submit(1)
        yield from pool.drain()
        return sim.now

    def stopper():
        yield Timeout(5.0)
        pool.stop()

    proc = sim.spawn(producer(), "producer")
    sim.spawn(stopper(), "stopper")
    sim.run()
    # drain() returned when the pool stopped, not after the 100 s item.
    assert proc.result == 5.0


def test_restart_gets_fresh_queue_and_workers():
    sim = Simulator()
    done = []

    def handler(item):
        yield Timeout(1.0)
        done.append(item)

    pool = make_pool(sim, handler, workers=1, capacity=8)

    def first_life():
        yield from pool.submit("doomed-1")
        yield from pool.submit("doomed-2")
        # Stop before any item finishes: queued work dies with the pool.
        pool.stop()

    sim.run_process(first_life())
    old_chan = pool.chan
    pool.start()
    assert pool.chan is not old_chan
    sim.run_process(submit_and_drain(pool, ["fresh"]))
    assert done == ["fresh"]
    assert pool.alive == 1


def test_retriable_handler_errors_are_absorbed_and_counted():
    sim = Simulator()
    attempts = []

    def handler(item):
        attempts.append(item)
        yield Timeout(0.1)
        if item % 2:
            raise TransientIOError(f"flaky {item}")

    pool = make_pool(sim, handler, workers=2)
    sim.run_process(submit_and_drain(pool, range(6)))
    assert len(attempts) == 6
    assert pool.metrics.errors == 3
    assert pool.metrics.completed == 6
    assert pool.alive == 2  # workers survive non-crash failures


def test_crash_point_kills_worker_between_pickup_and_handler():
    plan = FaultPlan(name="t", rules=[
        FaultRule("daemon.worker:pool", "crash", prob=1.0, max_fires=1)])
    sim = Simulator(injector=FaultInjector(plan))
    handled = []

    def handler(item):
        yield Timeout(0.1)
        handled.append(item)

    pool = WorkerPool(sim, "pool", handler, workers=2,
                      crash_point="daemon.worker:pool", crash_node="node")
    pool.start()

    def producer():
        for i in range(4):
            yield from pool.submit(i)
        yield from pool.drain()

    sim.spawn(producer(), "producer")
    sim.run(raise_failures=False)
    failures = sim.consume_failures()
    assert any(isinstance(error, CrashedError) for _, error in failures)
    # One worker died holding its item; the survivor handled the rest.
    assert len(handled) == 3
    assert pool.alive == 1

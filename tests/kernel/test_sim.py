"""Unit tests for the discrete-event kernel: clock, processes, events."""

import pytest

from repro.errors import SimError
from repro.kernel import TIMEOUT, Event, Simulator, Timeout, run_to_completion


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)
        return sim.now

    assert sim.run_process(proc()) == 5.0
    assert sim.now == 5.0


def test_timeouts_interleave_in_time_order():
    sim = Simulator()
    trace = []

    def proc(name, delay):
        yield Timeout(delay)
        trace.append((name, sim.now))

    sim.spawn(proc("b", 2.0))
    sim.spawn(proc("a", 1.0))
    sim.run()
    assert trace == [("a", 1.0), ("b", 2.0)]


def test_equal_time_events_fire_in_schedule_order():
    sim = Simulator()
    trace = []

    def proc(name):
        yield Timeout(1.0)
        trace.append(name)

    for name in "abc":
        sim.spawn(proc(name))
    sim.run()
    assert trace == ["a", "b", "c"]


def test_run_until_stops_clock_and_leaves_future_work():
    sim = Simulator()
    fired = []

    def proc():
        yield Timeout(10.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.after(-1.0, lambda: None)


def test_event_trigger_wakes_waiter_with_value():
    sim = Simulator()
    ev = Event(sim)
    got = []

    def waiter():
        got.append((yield ev.wait()))

    def firer():
        yield Timeout(2.0)
        ev.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["payload"]
    assert sim.now == 2.0


def test_event_trigger_wakes_all_waiters():
    sim = Simulator()
    ev = Event(sim)
    got = []

    def waiter(i):
        got.append((i, (yield ev.wait())))

    def firer():
        yield Timeout(1.0)
        ev.trigger(7)

    for i in range(3):
        sim.spawn(waiter(i))
    sim.spawn(firer())
    sim.run()
    assert got == [(0, 7), (1, 7), (2, 7)]


def test_event_wait_timeout_returns_sentinel():
    sim = Simulator()
    ev = Event(sim)

    def waiter():
        result = yield ev.wait(timeout=4.0)
        return result

    assert sim.run_process(waiter()) is TIMEOUT
    assert sim.now == 4.0


def test_timed_out_waiter_not_woken_by_later_trigger():
    sim = Simulator()
    ev = Event(sim)
    resumes = []

    def waiter():
        resumes.append((yield ev.wait(timeout=1.0)))

    def firer():
        yield Timeout(5.0)
        ev.trigger("late")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert resumes == [TIMEOUT]


def test_trigger_before_timeout_cancels_timer():
    sim = Simulator()
    ev = Event(sim)

    def waiter():
        return (yield ev.wait(timeout=100.0))

    def firer():
        yield Timeout(1.0)
        ev.trigger("fast")

    proc = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert proc.result == "fast"
    assert sim.now == 1.0  # the 100 s timer did not keep the sim alive


def test_latched_event_returns_immediately_to_late_waiter():
    sim = Simulator()
    ev = Event(sim, latch=True)
    ev.trigger(42)

    def waiter():
        return (yield ev.wait())

    assert sim.run_process(waiter()) == 42


def test_latched_event_double_trigger_is_error():
    sim = Simulator()
    ev = Event(sim, latch=True)
    ev.trigger(1)
    with pytest.raises(SimError):
        ev.trigger(2)


def test_process_join_returns_result():
    sim = Simulator()

    def child():
        yield Timeout(3.0)
        return "done"

    def parent():
        proc = sim.spawn(child())
        result = yield from proc.join()
        return result, sim.now

    assert sim.run_process(parent()) == ("done", 3.0)


def test_process_join_reraises_child_error():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        raise ValueError("boom")

    def parent():
        proc = sim.spawn(child())
        with pytest.raises(ValueError):
            yield from proc.join()
        return "caught"

    assert sim.run_process(parent()) == "caught"


def test_unjoined_process_failure_raises_from_run():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        raise ValueError("unobserved")

    sim.spawn(child())
    with pytest.raises(SimError):
        sim.run()


def test_run_raise_failures_false_collects():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        raise ValueError("collected")

    sim.spawn(child())
    sim.run(raise_failures=False)
    failures = sim.consume_failures()
    assert len(failures) == 1
    assert isinstance(failures[0][1], ValueError)


def test_kill_stops_process_without_error():
    sim = Simulator()
    ticks = []

    def daemon():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    proc = sim.spawn(daemon())
    sim.run(until=3.5)
    proc.kill()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert not sim.consume_failures()


def test_yield_from_composes_subgenerators():
    sim = Simulator()

    def inner():
        yield Timeout(2.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert sim.run_process(outer()) == 20
    assert sim.now == 4.0


def test_bad_yield_value_fails_process():
    sim = Simulator()

    def proc():
        yield "not a timeout"

    sim.spawn(proc())
    with pytest.raises(SimError):
        sim.run()


def test_rng_streams_are_deterministic_and_independent():
    a1 = Simulator(seed=7).stream("clients").random()
    a2 = Simulator(seed=7).stream("clients").random()
    b = Simulator(seed=7).stream("daemons").random()
    c = Simulator(seed=8).stream("clients").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_stream_is_cached_per_name():
    sim = Simulator()
    assert sim.stream("x") is sim.stream("x")


def test_gather_runs_children_concurrently():
    sim = Simulator()

    def child(delay, value):
        yield Timeout(delay)
        return value

    def parent():
        results = yield from sim.gather([child(3, "a"), child(1, "b")])
        return results, sim.now

    results, now = sim.run_process(parent())
    assert results == ["a", "b"]
    assert now == 3.0  # concurrent, not 4.0


def test_run_to_completion_helper():
    def root(sim):
        yield Timeout(1.0)
        return sim.now

    assert run_to_completion(root) == 1.0


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = sim.after(5.0, lambda: fired.append(True))
    timer.cancel()
    sim.run()
    assert fired == []


def test_throw_injects_exception_at_suspension():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield Timeout(100.0)
        except RuntimeError as exc:
            caught.append(str(exc))

    proc = sim.spawn(victim())
    sim.run(until=1.0)
    proc.throw(RuntimeError("injected"))
    sim.run()
    assert caught == ["injected"]

"""Scatter-gather fan-out primitives (the parallel 2PC transport)."""

import pytest

from repro.chaos.faults import FaultInjector, FaultPlan, FaultRule
from repro.errors import CrashedError, ReproError
from repro.kernel import Channel, Simulator, Timeout
from repro.kernel.rpc import (gather_all, scatter, scatter_cast, serve_loop,
                              wait_reply)


def echo_server(sim, delay=0.0, name="server"):
    """A server that echoes payloads after ``delay``; a ReproError
    payload is raised remotely instead."""
    chan = Channel(sim)

    def dispatch(payload):
        if delay:
            yield Timeout(delay)
        if isinstance(payload, ReproError):
            raise payload
        return payload

    sim.spawn(serve_loop(chan, dispatch), name)
    return chan


def test_gather_all_runs_generators_concurrently():
    sim = Simulator()

    def worker(i):
        yield Timeout(5.0)
        return i

    def root():
        results = yield from gather_all(sim, [worker(i) for i in range(4)])
        return results, sim.now

    results, now = sim.run_process(root())
    assert results == [0, 1, 2, 3]   # in gens order, not finish order
    assert now == 5.0                # 4 workers overlapped, not 20s


def test_scatter_overlaps_rpcs():
    sim = Simulator()
    chans = [echo_server(sim, delay=2.0, name=f"s{i}") for i in range(3)]

    def root():
        replies = yield from scatter(
            sim, [(chan, f"req{i}") for i, chan in enumerate(chans)])
        return replies, sim.now

    replies, now = sim.run_process(root())
    assert replies == ["req0", "req1", "req2"]
    assert now == 2.0  # one round-trip, not three


def test_scatter_first_error_raised_after_full_drain():
    """One participant fails fast; the error only surfaces once every
    other reply has been consumed (no orphaned reply events)."""
    sim = Simulator()
    fast_fail = echo_server(sim, delay=1.0, name="bad")
    slow_ok = echo_server(sim, delay=6.0, name="slow")

    def root():
        with pytest.raises(ReproError, match="vote-no"):
            yield from scatter(sim, [(slow_ok, "a"),
                                     (fast_fail, ReproError("vote-no")),
                                     (slow_ok, "c")])
        return sim.now

    # slow_ok serves its two requests back to back: 6s + 6s.
    assert sim.run_process(root()) == 12.0
    assert sim.consume_failures() == []  # failures consumed, not leaked


def test_scatter_return_exceptions_reports_which_failed():
    sim = Simulator()
    good = echo_server(sim, name="good")
    bad = echo_server(sim, name="bad")

    def root():
        replies = yield from scatter(
            sim, [(good, "ok"), (bad, ReproError("boom"))],
            return_exceptions=True)
        return replies

    replies = sim.run_process(root())
    assert replies[0] == "ok"
    assert isinstance(replies[1], ReproError)
    assert sim.consume_failures() == []


def test_scatter_cast_returns_after_sends_not_replies():
    """The E6 fan-out: control returns once every agent has RECEIVED its
    request; the replies are still outstanding."""
    sim = Simulator()
    chans = [echo_server(sim, delay=3.0, name=f"s{i}") for i in range(2)]

    def root():
        replies = yield from scatter_cast(
            sim, [(chan, f"r{i}") for i, chan in enumerate(chans)])
        sent_at = sim.now
        results = []
        for reply in replies:
            results.append((yield from wait_reply(reply)))
        return sent_at, results, sim.now

    sent_at, results, done_at = sim.run_process(root())
    assert sent_at == 0.0       # idle agents rendezvous immediately
    assert results == ["r0", "r1"]
    assert done_at == 3.0


def test_join_after_unwaited_failure_absolves():
    """A process that dies before anyone waits on it is recorded as an
    unhandled failure; consuming the outcome later forgives it."""
    sim = Simulator()

    def boom():
        raise ReproError("early death")
        yield  # pragma: no cover

    proc = sim.spawn(boom(), "boom")

    def waiter():
        yield Timeout(1.0)  # proc finalizes with no waiter first
        with pytest.raises(ReproError, match="early death"):
            yield from proc.join()
        return True

    # run_process would raise SimError if the failure were still pending.
    assert sim.run_process(waiter()) is True
    assert sim.consume_failures() == []


def test_delay_fault_stalls_the_gather_window():
    plan = FaultPlan([FaultRule("fan.test", "delay", prob=1.0,
                                max_fires=1, delay=7.0)], name="t")
    sim = Simulator(injector=FaultInjector(plan))
    chans = [echo_server(sim, delay=2.0, name=f"s{i}") for i in range(2)]

    def root():
        replies = yield from scatter(
            sim, [(chan, i) for i, chan in enumerate(chans)],
            fault_point="fan.test")
        return replies, sim.now

    replies, now = sim.run_process(root())
    assert replies == [0, 1]
    assert now == 7.0  # the injected stall dominates the 2s round-trip


def test_crash_fault_in_window_drains_outstanding_replies():
    """The coordinator dies between scatter and gather: the error
    surfaces immediately and detached absorbers consume the replies the
    gatherer will never collect."""
    plan = FaultPlan([FaultRule("fan.test", "crash", prob=1.0,
                                max_fires=1)], name="t")
    sim = Simulator(injector=FaultInjector(plan))
    chans = [echo_server(sim, delay=4.0, name=f"s{i}") for i in range(3)]

    def root():
        with pytest.raises(CrashedError):
            yield from scatter(sim, [(chan, i) for i, chan in
                                     enumerate(chans)],
                               fault_point="fan.test", fault_node="host-db")
        return sim.now

    assert sim.run_process(root()) == 0.0  # crash beat every reply
    sim.run()  # let the in-flight requests and absorbers finish
    assert sim.consume_failures() == []

"""Backoff: geometric growth, cap, and jitter interaction."""

import random

from repro.kernel.backoff import Backoff


def test_uncapped_sequence_is_geometric():
    b = Backoff(0.5, factor=2.0)
    assert [b.next() for _ in range(4)] == [0.5, 1.0, 2.0, 4.0]


def test_cap_bounds_the_sequence():
    b = Backoff(0.5, factor=2.0, cap=3.0)
    assert [b.next() for _ in range(4)] == [0.5, 1.0, 2.0, 3.0]


def test_reset_restarts_the_sequence():
    b = Backoff(1.0, factor=2.0)
    b.next(), b.next()
    b.reset()
    assert b.next() == 1.0


def test_jitter_without_rng_is_ignored():
    b = Backoff(1.0, factor=2.0, jitter=0.5)
    assert b.next() == 1.0


def test_jitter_stays_within_half_width():
    b = Backoff(1.0, factor=2.0, jitter=0.1, rng=random.Random(7))
    for expected in (1.0, 2.0, 4.0):
        delay = b.next()
        assert expected * 0.9 <= delay <= expected * 1.1


def test_jittered_delay_never_exceeds_cap():
    """Regression: jitter used to be applied AFTER clamping, so an
    upward draw pushed capped delays past the configured ceiling."""
    cap = 2.0
    for seed in range(50):
        b = Backoff(1.0, factor=4.0, cap=cap, jitter=0.5,
                    rng=random.Random(seed))
        for _ in range(6):
            assert b.next() <= cap


def test_capped_jitter_still_varies_below_the_cap():
    """The clamp must not flatten jitter entirely: downward draws on a
    capped delay stay below the cap (retries must not re-synchronize)."""
    b = Backoff(1.0, factor=4.0, cap=2.0, jitter=0.5,
                rng=random.Random(3))
    delays = [b.next() for _ in range(8)]
    capped = delays[2:]  # raw sequence is past the cap from attempt 2 on
    assert any(d < 2.0 for d in capped)
    assert all(d <= 2.0 for d in capped)

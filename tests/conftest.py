"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.kernel import Simulator
from repro.minidb import Database, DBConfig


@pytest.fixture
def sim():
    return Simulator(seed=1234)


@pytest.fixture
def db(sim):
    return Database(sim, "testdb", DBConfig())


def run(sim, gen, until=None):
    """Run one root generator to completion and return its result."""
    return sim.run_process(gen, until=until)


def setup_files_table(db, rows=0):
    """Generator: create the canonical test table with a unique name index."""
    session = db.session()
    yield from session.execute(
        "CREATE TABLE files (id INT, name TEXT, size INT, state TEXT)")
    yield from session.execute("CREATE UNIQUE INDEX files_name ON files (name)")
    yield from session.execute("CREATE INDEX files_state ON files (state)")
    for i in range(rows):
        yield from session.execute(
            "INSERT INTO files (id, name, size, state) VALUES (?, ?, ?, ?)",
            (i, f"file-{i:05d}", i * 10, "linked" if i % 2 == 0 else "free"))
    yield from session.commit()
    return session

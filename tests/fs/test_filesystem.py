"""File system and archive server unit tests."""

import pytest

from repro.archive import ArchiveServer
from repro.errors import (ArchiveError, FileExists, FileNotFound,
                          PermissionDenied)
from repro.fs.filesystem import READ_ONLY, READ_WRITE, FileSystem


@pytest.fixture
def fs(sim):
    return FileSystem(sim)


def test_create_and_stat(fs):
    node = fs.create("/a.txt", owner="alice", content="hello")
    assert node.owner == "alice"
    assert node.size == 5
    assert fs.stat("/a.txt").inode == node.inode


def test_create_duplicate_raises(fs):
    fs.create("/a.txt", "alice")
    with pytest.raises(FileExists):
        fs.create("/a.txt", "bob")


def test_stat_missing_raises(fs):
    with pytest.raises(FileNotFound):
        fs.stat("/nope")


def test_owner_can_read_write(fs):
    fs.create("/a.txt", "alice", "v1")
    assert fs.read("/a.txt", "alice") == "v1"
    fs.write("/a.txt", "alice", "v2")
    assert fs.read("/a.txt", "alice") == "v2"


def test_other_user_can_read_with_world_bits(fs):
    fs.create("/a.txt", "alice", "x", mode=READ_WRITE)
    assert fs.read("/a.txt", "bob") == "x"


def test_other_user_cannot_write(fs):
    fs.create("/a.txt", "alice", "x")
    with pytest.raises(PermissionDenied):
        fs.write("/a.txt", "bob", "y")


def test_read_only_mode_blocks_even_owner_write(fs):
    fs.create("/a.txt", "alice", "x", mode=READ_ONLY)
    with pytest.raises(PermissionDenied):
        fs.write("/a.txt", "alice", "y")


def test_root_bypasses_permissions(fs):
    fs.create("/a.txt", "alice", "x", mode=READ_ONLY)
    fs.write("/a.txt", "root", "y")
    assert fs.read("/a.txt", "root") == "y"


def test_delete_and_rename(fs):
    fs.create("/a.txt", "alice", "x")
    fs.rename("/a.txt", "/b.txt", "alice")
    assert not fs.exists("/a.txt")
    assert fs.exists("/b.txt")
    fs.delete("/b.txt", "alice")
    assert not fs.exists("/b.txt")


def test_rename_onto_existing_raises(fs):
    fs.create("/a.txt", "alice")
    fs.create("/b.txt", "alice")
    with pytest.raises(FileExists):
        fs.rename("/a.txt", "/b.txt", "alice")


def test_chown_chmod(fs):
    fs.create("/a.txt", "alice", "x")
    fs.chown("/a.txt", "dlfmadm")
    fs.chmod("/a.txt", READ_ONLY)
    node = fs.stat("/a.txt")
    assert node.owner == "dlfmadm"
    assert node.mode == READ_ONLY
    with pytest.raises(PermissionDenied):
        fs.delete("/a.txt", "alice")


def test_mtime_advances_with_clock(sim):
    fs = FileSystem(sim)
    fs.create("/a.txt", "alice", "x")
    sim.after(10, lambda: None)
    sim.run()
    fs.write("/a.txt", "alice", "y")
    assert fs.stat("/a.txt").mtime == 10.0


def test_listdir_prefix(fs):
    fs.create("/v/a.mpg", "a")
    fs.create("/v/b.mpg", "a")
    fs.create("/w/c.mpg", "a")
    assert fs.listdir("/v/") == ["/v/a.mpg", "/v/b.mpg"]


def test_restore_file_replaces(fs):
    fs.create("/a.txt", "alice", "old")
    node = fs.restore_file("/a.txt", "new", "bob", "users", READ_WRITE)
    assert node.content == "new"
    assert node.owner == "bob"


# -- archive server --------------------------------------------------------

def run(sim, gen):
    return sim.run_process(gen)


def test_archive_store_and_retrieve(sim):
    archive = ArchiveServer(sim)

    def go():
        yield from archive.store("fs1", "/a", "r1", "content", "alice",
                                 "users", READ_WRITE)
        copy = yield from archive.retrieve("fs1", "/a", "r1")
        return copy

    copy = run(sim, go())
    assert copy.content == "content"
    assert copy.owner == "alice"
    assert archive.copy_count() == 1


def test_archive_versions_by_recovery_id(sim):
    archive = ArchiveServer(sim)

    def go():
        yield from archive.store("fs1", "/a", "r1", "v1", "a", "g", 0o644)
        yield from archive.store("fs1", "/a", "r2", "v2", "a", "g", 0o644)
        one = yield from archive.retrieve("fs1", "/a", "r1")
        two = yield from archive.retrieve("fs1", "/a", "r2")
        return one.content, two.content

    assert run(sim, go()) == ("v1", "v2")
    assert len(archive.versions("fs1", "/a")) == 2


def test_archive_missing_version_raises(sim):
    archive = ArchiveServer(sim)

    def go():
        with pytest.raises(ArchiveError):
            yield from archive.retrieve("fs1", "/a", "nope")
        return True

    assert run(sim, go()) is True


def test_archive_delete_version(sim):
    archive = ArchiveServer(sim)

    def go():
        yield from archive.store("fs1", "/a", "r1", "v", "a", "g", 0o644)
        archive.delete_version("fs1", "/a", "r1")
        with pytest.raises(ArchiveError):
            archive.delete_version("fs1", "/a", "r1")
        return archive.copy_count()

    assert run(sim, go()) == 0


def test_archive_transfer_charges_time_when_enabled(sim):
    archive = ArchiveServer(sim, charge_time=True)

    def go():
        yield from archive.store("fs1", "/a", "r1", "x" * 1000, "a", "g", 0)
        return sim.now

    assert run(sim, go()) > 0.0
